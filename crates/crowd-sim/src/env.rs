//! The zero-copy environment layer: borrowed arrival views, the reusable [`Decision`]
//! buffer and the [`Env`] trait that [`Platform`](crate::Platform) implements.
//!
//! The original Policy↔Platform interface materialised an owned
//! [`ArrivalContext`] for every worker arrival, cloning every task feature vector in the
//! pool plus the worker feature — per-arrival allocation that dominates the decision loop
//! at scale. This module replaces that hot path:
//!
//! * [`ArrivalView`] borrows task features straight out of the platform's task-feature
//!   arena (one flat `Vec<f32>`, filled once at construction) and the worker feature out of
//!   the worker-feature arena — **no per-arrival clones**;
//! * [`Decision`] is a reusable ranking buffer the policy writes into — no allocation per
//!   decision once its capacity has grown to the pool size;
//! * [`FeedbackView`] borrows the shown list and worker features from the platform's
//!   per-step scratch state;
//! * [`Env`] is the minimal stepping interface (`next_arrival` → `arrival`/`apply` →
//!   `feedback`) that the `Session` facade in `crowd-experiments` drives, for one
//!   simulation or for `N` of them in lock-step.
//!
//! The owned types ([`ArrivalContext`], [`PolicyFeedback`]) remain as *record* types — for
//! warm-start history, synthetic test harnesses and serialization-ish uses — and can be
//! bridged both ways: [`ArrivalContext::view`] / [`PolicyFeedback::view`] produce borrowed
//! views over owned storage, [`ArrivalView::to_context`] / [`FeedbackView::to_feedback`]
//! gather owned copies.

use crate::policy::{Action, ArrivalContext, PolicyFeedback, TaskSnapshot};
use crate::task::{Task, TaskId};
use crate::worker::WorkerId;

/// One available task, borrowed from platform storage (or from an owned snapshot list).
///
/// `feature` points into the platform's task-feature arena; copying a `TaskRef` copies only
/// the reference, never the feature data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskRef<'a> {
    /// Task identifier.
    pub id: TaskId,
    /// Task feature vector (Sec. IV-A1), borrowed.
    pub feature: &'a [f32],
    /// Current Dixit–Stiglitz quality of the task (Sec. V-A).
    pub quality: f32,
    /// Raw award value.
    pub award: f32,
    /// Category index.
    pub category: u16,
    /// Domain index.
    pub domain: u16,
    /// Expiration time (minutes since horizon start).
    pub deadline: u64,
    /// Number of completions so far.
    pub completions: usize,
}

impl TaskRef<'_> {
    /// Gathers an owned [`TaskSnapshot`] (clones the feature vector).
    pub fn to_snapshot(&self) -> TaskSnapshot {
        TaskSnapshot {
            id: self.id,
            feature: self.feature.to_vec(),
            quality: self.quality,
            award: self.award,
            category: self.category,
            domain: self.domain,
            deadline: self.deadline,
            completions: self.completions,
        }
    }
}

impl TaskSnapshot {
    /// Borrowed view of this snapshot.
    pub fn as_ref(&self) -> TaskRef<'_> {
        TaskRef {
            id: self.id,
            feature: &self.feature,
            quality: self.quality,
            award: self.award,
            category: self.category,
            domain: self.domain,
            deadline: self.deadline,
            completions: self.completions,
        }
    }
}

/// Borrowed slices over the platform's internal SoA task storage.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArenaPool<'a> {
    /// Ids of the available tasks, in pool order.
    pub ids: &'a [TaskId],
    /// Flat task-feature arena, indexed by `TaskId` row.
    pub features: &'a [f32],
    /// Width of one feature row.
    pub feature_dim: usize,
    /// Current task qualities, indexed by `TaskId`.
    pub qualities: &'a [f32],
    /// Completion counts, indexed by `TaskId`.
    pub completions: &'a [u32],
    /// Static task attributes, indexed by `TaskId`.
    pub tasks: &'a [Task],
}

/// Borrowed view over a sharded platform's per-shard committed state: the routed id list
/// plus the shards that own the candidate rows (entity `i` lives on shard `i mod S` at
/// local row `i / S`). See [`crate::sharded`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardedPool<'a> {
    /// Ids of the available tasks, in pool order (global creation order).
    pub ids: &'a [TaskId],
    /// The shards owning committed task state.
    pub shards: &'a [crate::sharded::Shard],
    /// Shard count.
    pub n_shards: usize,
    /// Width of one task feature row.
    pub feature_dim: usize,
    /// Static task attributes, indexed by global `TaskId`.
    pub tasks: &'a [Task],
}

impl<'a> ShardedPool<'a> {
    fn task(&self, index: usize) -> TaskRef<'a> {
        let id = self.ids[index];
        let global = id.index();
        let shard = &self.shards[global % self.n_shards];
        let local = global / self.n_shards;
        let task = &self.tasks[global];
        TaskRef {
            id,
            feature: shard.pooled_task_feature(local, self.feature_dim),
            quality: shard.task_qualities[local],
            award: task.award,
            category: task.category,
            domain: task.domain,
            deadline: task.deadline,
            completions: shard.task_completions[local] as usize,
        }
    }
}

/// How an [`ArrivalView`] resolves task rows: arena slices borrowed from a live platform,
/// per-shard state borrowed from a sharded platform, or an owned snapshot list (record
/// types, tests, synthetic harnesses).
#[derive(Debug, Clone, Copy)]
enum PoolBacking<'a> {
    Arena(ArenaPool<'a>),
    Sharded(ShardedPool<'a>),
    Snapshots(&'a [TaskSnapshot]),
}

/// Everything a policy sees when a worker arrives — the observable part of the MDP state
/// `s_i = [f_wi, f_Ti, q_wi, q_Ti]` — borrowing from platform storage instead of cloning.
///
/// The view is `Copy`; it stays valid until the environment is advanced (the platform
/// defers state commits until the next [`Env::next_arrival`], so the view a policy decided
/// on is byte-identical when `observe` runs after [`Env::apply`]).
#[derive(Debug, Clone, Copy)]
pub struct ArrivalView<'a> {
    /// Arrival time in minutes since the start of the horizon.
    pub time: u64,
    /// The arriving worker.
    pub worker_id: WorkerId,
    /// The worker's observable feature vector (distribution of recent completions).
    pub worker_feature: &'a [f32],
    /// The worker's known quality `q_wi ∈ [0, 1]`.
    pub worker_quality: f32,
    /// Whether this worker is seen for the first time.
    pub is_new_worker: bool,
    pool: PoolBacking<'a>,
}

impl<'a> ArrivalView<'a> {
    pub(crate) fn from_arena(
        time: u64,
        worker_id: WorkerId,
        worker_feature: &'a [f32],
        worker_quality: f32,
        is_new_worker: bool,
        pool: ArenaPool<'a>,
    ) -> Self {
        ArrivalView {
            time,
            worker_id,
            worker_feature,
            worker_quality,
            is_new_worker,
            pool: PoolBacking::Arena(pool),
        }
    }

    pub(crate) fn from_sharded(
        time: u64,
        worker_id: WorkerId,
        worker_feature: &'a [f32],
        worker_quality: f32,
        is_new_worker: bool,
        pool: ShardedPool<'a>,
    ) -> Self {
        ArrivalView {
            time,
            worker_id,
            worker_feature,
            worker_quality,
            is_new_worker,
            pool: PoolBacking::Sharded(pool),
        }
    }

    /// Number of available tasks.
    pub fn n_tasks(&self) -> usize {
        match self.pool {
            PoolBacking::Arena(a) => a.ids.len(),
            PoolBacking::Sharded(p) => p.ids.len(),
            PoolBacking::Snapshots(s) => s.len(),
        }
    }

    /// True when no task is available.
    pub fn is_empty(&self) -> bool {
        self.n_tasks() == 0
    }

    /// The task at pool position `index`, borrowed.
    pub fn task(&self, index: usize) -> TaskRef<'a> {
        match self.pool {
            PoolBacking::Arena(a) => {
                let id = a.ids[index];
                let row = id.index();
                let task = &a.tasks[row];
                TaskRef {
                    id,
                    feature: &a.features[row * a.feature_dim..(row + 1) * a.feature_dim],
                    quality: a.qualities[row],
                    award: task.award,
                    category: task.category,
                    domain: task.domain,
                    deadline: task.deadline,
                    completions: a.completions[row] as usize,
                }
            }
            PoolBacking::Sharded(p) => p.task(index),
            PoolBacking::Snapshots(s) => s[index].as_ref(),
        }
    }

    /// Id of the task at pool position `index`.
    pub fn task_id(&self, index: usize) -> TaskId {
        match self.pool {
            PoolBacking::Arena(a) => a.ids[index],
            PoolBacking::Sharded(p) => p.ids[index],
            PoolBacking::Snapshots(s) => s[index].id,
        }
    }

    /// Iterator over the available tasks, in pool order.
    pub fn tasks(&self) -> impl ExactSizeIterator<Item = TaskRef<'a>> + '_ {
        let view = *self;
        (0..self.n_tasks()).map(move |i| view.task(i))
    }

    /// Position of a task inside the pool, if present.
    pub fn position_of(&self, task: TaskId) -> Option<usize> {
        match self.pool {
            PoolBacking::Arena(a) => a.ids.iter().position(|&t| t == task),
            PoolBacking::Sharded(p) => p.ids.iter().position(|&t| t == task),
            PoolBacking::Snapshots(s) => s.iter().position(|t| t.id == task),
        }
    }

    /// Gathers an owned [`ArrivalContext`] (clones every feature vector — warm-start history
    /// and diagnostics only, never the hot loop).
    pub fn to_context(&self) -> ArrivalContext {
        ArrivalContext {
            time: self.time,
            worker_id: self.worker_id,
            worker_feature: self.worker_feature.to_vec(),
            worker_quality: self.worker_quality,
            is_new_worker: self.is_new_worker,
            available: self.tasks().map(|t| t.to_snapshot()).collect(),
        }
    }
}

impl ArrivalContext {
    /// Borrowed view over this owned context, for driving the view-based [`Policy`]
    /// interface from owned records (warm-start replay, tests, synthetic harnesses).
    ///
    /// [`Policy`]: crate::Policy
    pub fn view(&self) -> ArrivalView<'_> {
        ArrivalView {
            time: self.time,
            worker_id: self.worker_id,
            worker_feature: &self.worker_feature,
            worker_quality: self.worker_quality,
            is_new_worker: self.is_new_worker,
            pool: PoolBacking::Snapshots(&self.available),
        }
    }
}

/// Outcome of showing a decision to the arriving worker, borrowed from the environment's
/// per-step scratch state. Valid until the next [`Env::next_arrival`].
#[derive(Debug, Clone, Copy)]
pub struct FeedbackView<'a> {
    /// Arrival time of the decision this feedback refers to.
    pub time: u64,
    /// The worker who made the decision.
    pub worker_id: WorkerId,
    /// The worker's quality.
    pub worker_quality: f32,
    /// Tasks shown, in the order they were shown (unavailable tasks already filtered out).
    pub shown: &'a [TaskId],
    /// Completed task and its 0-based position in `shown`, if any task was completed.
    pub completed: Option<(TaskId, usize)>,
    /// Quality gain `q_new - q_old` of the completed task (0 when nothing was completed).
    pub quality_gain: f32,
    /// Worker feature before the completion was applied.
    pub worker_feature_before: &'a [f32],
    /// Worker feature after the completion (equal to `before` when nothing was completed).
    pub worker_feature_after: &'a [f32],
}

impl FeedbackView<'_> {
    /// MDP(w) immediate reward: 1 when a task was completed, else 0 (Sec. IV-C).
    pub fn completion_reward(&self) -> f32 {
        if self.completed.is_some() {
            1.0
        } else {
            0.0
        }
    }

    /// MDP(r) immediate reward: the quality gain of the completed task (Sec. V-C).
    pub fn quality_reward(&self) -> f32 {
        self.quality_gain
    }

    /// Gathers an owned [`PolicyFeedback`] record (clones the borrowed slices).
    pub fn to_feedback(&self) -> PolicyFeedback {
        PolicyFeedback {
            time: self.time,
            worker_id: self.worker_id,
            worker_quality: self.worker_quality,
            shown: self.shown.to_vec(),
            completed: self.completed,
            quality_gain: self.quality_gain,
            worker_feature_before: self.worker_feature_before.to_vec(),
            worker_feature_after: self.worker_feature_after.to_vec(),
        }
    }
}

impl PolicyFeedback {
    /// Borrowed view over this owned record.
    pub fn view(&self) -> FeedbackView<'_> {
        FeedbackView {
            time: self.time,
            worker_id: self.worker_id,
            worker_quality: self.worker_quality,
            shown: &self.shown,
            completed: self.completed,
            quality_gain: self.quality_gain,
            worker_feature_before: &self.worker_feature_before,
            worker_feature_after: &self.worker_feature_after,
        }
    }
}

/// A policy's decision for one arrival: an ordered list of task ids written into a
/// reusable buffer. Clearing and refilling the buffer performs no allocation once its
/// capacity has grown to the pool size. The owned [`Action`] record is the deprecated
/// equivalent, kept for history and tests; bridge with [`Decision::set_action`] /
/// [`Decision::to_action`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Decision {
    ranking: Vec<TaskId>,
    assignment: bool,
}

impl Decision {
    /// An empty decision buffer.
    pub fn new() -> Self {
        Decision::default()
    }

    /// An empty buffer pre-sized for pools of up to `capacity` tasks.
    pub fn with_capacity(capacity: usize) -> Self {
        Decision {
            ranking: Vec::with_capacity(capacity),
            assignment: false,
        }
    }

    /// Empties the buffer (keeps its capacity).
    pub fn clear(&mut self) {
        self.ranking.clear();
        self.assignment = false;
    }

    /// Records a single-assignment decision (the paper's "recommend one task" setting).
    pub fn assign(&mut self, task: TaskId) {
        self.ranking.clear();
        self.ranking.push(task);
        self.assignment = true;
    }

    /// Appends the next task of a ranked list (best first).
    pub fn push(&mut self, task: TaskId) {
        self.ranking.push(task);
        self.assignment = false;
    }

    /// Appends several ranked tasks at once.
    pub fn extend(&mut self, tasks: impl IntoIterator<Item = TaskId>) {
        self.ranking.extend(tasks);
        self.assignment = false;
    }

    /// The shown tasks in display order (a single assignment is a one-element list).
    pub fn shown(&self) -> &[TaskId] {
        &self.ranking
    }

    /// Number of tasks in the decision.
    pub fn len(&self) -> usize {
        self.ranking.len()
    }

    /// True when nothing is shown.
    pub fn is_empty(&self) -> bool {
        self.ranking.is_empty()
    }

    /// True when the decision was recorded through [`Decision::assign`].
    pub fn is_assignment(&self) -> bool {
        self.assignment
    }

    /// Overwrites the buffer from an owned [`Action`] (compatibility path).
    pub fn set_action(&mut self, action: &Action) {
        self.clear();
        match action {
            Action::Assign(t) => self.assign(*t),
            Action::Rank(list) => self.extend(list.iter().copied()),
        }
    }

    /// Gathers an owned [`Action`] (compatibility path; allocates).
    pub fn to_action(&self) -> Action {
        if self.assignment {
            Action::Assign(self.ranking[0])
        } else {
            Action::Rank(self.ranking.clone())
        }
    }
}

/// A steppable environment: the interface between the replay loop and a simulation.
///
/// The canonical hot loop — no per-arrival clones of task or worker feature vectors:
///
/// ```text
/// let mut decision = Decision::new();
/// while env.next_arrival() {
///     policy.act(&env.arrival(), &mut decision);
///     env.apply(&decision);
///     policy.observe(&env.arrival(), &env.feedback());
/// }
/// ```
///
/// State mutations from [`Env::apply`] are deferred until the next
/// [`Env::next_arrival`], so the views handed to `observe` are identical to the ones the
/// policy decided on.
pub trait Env {
    /// Advances to the next worker arrival (committing any staged feedback effects).
    /// Returns `false` when the event stream is exhausted.
    fn next_arrival(&mut self) -> bool;

    /// Borrowed view of the current arrival. Panics when no arrival is pending.
    fn arrival(&self) -> ArrivalView<'_>;

    /// Simulates the worker's response to `decision` and stages the resulting state
    /// updates (committed on the next [`Env::next_arrival`]).
    fn apply(&mut self, decision: &Decision);

    /// Borrowed feedback of the last [`Env::apply`]. Panics before the first apply of the
    /// current arrival.
    fn feedback(&self) -> FeedbackView<'_>;

    /// Commits any staged feedback effects without advancing the event stream, and
    /// invalidates the current feedback view. [`Env::next_arrival`] does this implicitly;
    /// call `flush` when reading aggregate state after the *last* apply of a run.
    fn flush(&mut self);

    /// True when the whole event stream has been consumed.
    fn finished(&self) -> bool;

    /// Current simulation time (minutes since horizon start).
    fn current_time(&self) -> u64;

    /// Sum of all task qualities so far (the requester-side objective).
    fn total_task_quality(&self) -> f32;

    /// Total number of committed completions so far.
    fn total_completions(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(id: u32, quality: f32) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId(id),
            feature: vec![id as f32, 1.0],
            quality,
            award: 5.0,
            category: 1,
            domain: 2,
            deadline: 77,
            completions: 3,
        }
    }

    fn context(n: u32) -> ArrivalContext {
        ArrivalContext {
            time: 9,
            worker_id: WorkerId(4),
            worker_feature: vec![0.25, 0.75],
            worker_quality: 0.6,
            is_new_worker: true,
            available: (0..n).map(|i| snapshot(i, 0.1 * i as f32)).collect(),
        }
    }

    #[test]
    fn view_roundtrips_through_owned_context() {
        let ctx = context(3);
        let view = ctx.view();
        assert_eq!(view.n_tasks(), 3);
        assert_eq!(view.worker_feature, &[0.25, 0.75]);
        assert_eq!(view.task(1).id, TaskId(1));
        assert_eq!(view.task(1).feature, &[1.0, 1.0]);
        assert_eq!(view.position_of(TaskId(2)), Some(2));
        assert_eq!(view.position_of(TaskId(9)), None);
        let back = view.to_context();
        assert_eq!(back, ctx);
    }

    #[test]
    fn task_refs_convert_to_snapshots() {
        let ctx = context(1);
        let task = ctx.view().task(0);
        assert_eq!(task.to_snapshot(), ctx.available[0]);
        assert_eq!(ctx.available[0].as_ref(), task);
    }

    #[test]
    fn tasks_iterator_matches_indexing() {
        let ctx = context(4);
        let view = ctx.view();
        let ids: Vec<TaskId> = view.tasks().map(|t| t.id).collect();
        assert_eq!(ids, vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)]);
        assert_eq!(view.tasks().len(), 4);
    }

    #[test]
    fn decision_buffer_reuses_capacity() {
        let mut d = Decision::with_capacity(8);
        d.push(TaskId(1));
        d.push(TaskId(2));
        assert_eq!(d.shown(), &[TaskId(1), TaskId(2)]);
        assert!(!d.is_assignment());
        let cap = d.ranking.capacity();
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.ranking.capacity(), cap);
        d.assign(TaskId(7));
        assert!(d.is_assignment());
        assert_eq!(d.shown(), &[TaskId(7)]);
    }

    #[test]
    fn decision_action_roundtrip() {
        let mut d = Decision::new();
        d.set_action(&Action::Assign(TaskId(3)));
        assert_eq!(d.to_action(), Action::Assign(TaskId(3)));
        d.set_action(&Action::Rank(vec![TaskId(1), TaskId(2)]));
        assert_eq!(d.to_action(), Action::Rank(vec![TaskId(1), TaskId(2)]));
        assert_eq!(d.shown(), &[TaskId(1), TaskId(2)]);
    }

    #[test]
    fn feedback_view_roundtrip_and_rewards() {
        let fb = PolicyFeedback {
            time: 1,
            worker_id: WorkerId(0),
            worker_quality: 0.7,
            shown: vec![TaskId(1), TaskId(2)],
            completed: Some((TaskId(2), 1)),
            quality_gain: 0.4,
            worker_feature_before: vec![0.0],
            worker_feature_after: vec![1.0],
        };
        let view = fb.view();
        assert_eq!(view.completion_reward(), 1.0);
        assert_eq!(view.quality_reward(), 0.4);
        assert_eq!(view.shown, &[TaskId(1), TaskId(2)]);
        assert_eq!(view.to_feedback(), fb);
    }
}
