//! The sharded platform environment: [`ShardedEnv`] partitions workers and tasks across
//! `S` shards — each shard owning its own feature arenas and committed-state region —
//! while replaying the exact per-arrival protocol of the unsharded [`Platform`].
//!
//! # Shard ownership and routing
//!
//! Entity `i` (task or worker) is owned by shard `i mod S` at local row `i / S`; with
//! `S = 1` the layout degenerates to the flat arenas of [`Platform`]. A shard owns every
//! piece of committed dynamic state of its entities: the task feature store, pool
//! membership flags, quality/completion arrays and completer lists on the task side, and
//! the (mutable) worker feature arena plus seen/completion arrays on the worker side.
//!
//! The *candidate list* a policy sees is cross-shard: the top level maintains `routed`,
//! the ids of the currently available tasks in global creation order — exactly the pool
//! order of the unsharded platform. Creations append during the event scan (the event
//! stream is the global creation order); expirations mark shards dirty and the next
//! arrival compacts `routed` in one pass against the owning shards' membership flags —
//! the same final list `Platform`'s per-event `retain` produces, with the per-event
//! O(pool) scans batched into one. At arrival time the [`ArrivalView`] resolves each
//! candidate id to its owning shard's arenas (`crate::env`'s sharded pool backing).
//!
//! # Parallel per-shard advance
//!
//! Task events between two arrivals are routed to per-shard pending lists and applied
//! per shard; when the batch is large (dataset bursts, month boundaries) and the
//! environment was given a multi-worker [`ThreadPool`], shards advance in parallel via
//! `par_chunks` — deterministically, since each shard's event sublist is applied in
//! event order and shards share no state. The env-only advance contains **no policy
//! calls and no RNG draws**, which is what lets `Session::step_batched` advance many
//! sessions' environments in parallel while keeping policy hooks sequential (see
//! `crowd-experiments`).
//!
//! # Bit-identity argument
//!
//! With full-precision (f32) arenas, a sharded replay is **bit-identical** to the
//! unsharded platform at any shard count and any thread count:
//!
//! * the behaviour RNG stays a single top-level stream consumed only inside `apply`, in
//!   arrival order — sharding never moves or splits a draw;
//! * the policy-visible pool order is the global creation order, reconstructed exactly
//!   (append in event order + order-preserving compaction);
//! * per-entity committed state lives on exactly one shard and is updated by the same
//!   scalar operations in the same order as the flat arenas;
//! * floating-point reductions over many entities ([`ShardedEnv::total_task_quality`],
//!   the canonical fingerprint) iterate in global id order, not shard order.
//!
//! `tests/shard_equivalence.rs` proves this end to end at shards {1, 2, 8} ×
//! `CROWD_THREADS` {1, 4}.
//!
//! # Compact (f16) arenas
//!
//! With [`ShardSpec::compact_features`] the feature stores keep binary16 bits (half the
//! bytes of f32) so a ~100× replay fits in bounded RSS. Task features are one-hot and
//! decode losslessly; each shard keeps a small decoded slab holding only the
//! *pool-resident* task rows (decoded once at pool admission — decoding is pure, so this
//! caches the exact values a decode-at-view-time implementation would produce).
//! Worker features are decoded per arrival into one scratch row and re-quantised on
//! every commit; the quantisation contract is documented in [`crate::compact`] and
//! pinned by the f16 tests in `tests/shard_equivalence.rs`. Compact mode is an explicit
//! opt-in precisely because the worker-side round-trip makes it *not* bit-identical to
//! the f32 path.

use crate::behavior::BehaviorModel;
use crate::compact::FeatureArena;
use crate::dataset::Dataset;
use crate::env::{ArrivalView, Decision, Env, FeedbackView, ShardedPool};
use crate::event::{Event, EventKind};
use crate::features::FeatureSpace;
use crate::platform::{CurrentArrival, Platform, StepState};
use crate::quality::dixit_stiglitz;
use crate::task::TaskId;
use crate::worker::WorkerId;
use crowd_tensor::{Rng, ThreadPool};

/// Minimum pending task events before the per-shard advance is dispatched on the pool;
/// below this the per-event work (flag writes, slab admissions) is cheaper inline than a
/// pool dispatch.
const PAR_EVENT_THRESHOLD: usize = 256;

/// Minimum decoded-slab slot count before the expiry-burst repack
/// ([`Shard::maybe_shrink_slab`]) considers shrinking; below this the slab is already
/// tiny and a repack would just churn allocations.
const SLAB_SHRINK_MIN_SLOTS: usize = 64;

/// Configuration of a [`ShardedEnv`]: shard count, feature precision and the pool used
/// for the per-shard advance.
#[derive(Debug, Clone, Copy)]
pub struct ShardSpec {
    /// Number of shards (clamped to at least 1). `1` reproduces the unsharded layout.
    pub n_shards: usize,
    /// Store features as binary16 bits (half the RSS; worker features quantise on every
    /// commit — see [`crate::compact`]). Off by default: the f32 path is bit-identical
    /// to [`Platform`].
    pub compact_features: bool,
    /// Pool for the parallel per-shard advance. Serial by default; thread count only
    /// changes wall clock, never results.
    pub pool: ThreadPool,
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec {
            n_shards: 1,
            compact_features: false,
            pool: ThreadPool::serial(),
        }
    }
}

impl ShardSpec {
    /// A spec with `n_shards` shards, f32 features and a serial pool.
    pub fn new(n_shards: usize) -> Self {
        ShardSpec {
            n_shards: n_shards.max(1),
            ..ShardSpec::default()
        }
    }

    /// Enables or disables compact (f16) feature storage (builder form).
    pub fn compact(mut self, compact: bool) -> Self {
        self.compact_features = compact;
        self
    }

    /// Sets the advance pool (builder form).
    pub fn with_pool(mut self, pool: ThreadPool) -> Self {
        self.pool = pool;
        self
    }
}

/// A shard's task feature rows: full-precision, or binary16 bits plus a decoded slab of
/// the pool-resident rows (slots are recycled through a free list as tasks expire).
#[derive(Debug, Clone)]
pub(crate) enum TaskStore {
    F32(Vec<f32>),
    F16 {
        /// Binary16 bits of every owned task's feature row (cold storage, immutable).
        bits: Vec<u16>,
        /// Slab slot of each owned task; valid only while the task is in the pool.
        slots: Vec<u32>,
        /// Decoded f32 rows of the pool-resident tasks.
        slab: Vec<f32>,
        /// Recycled slab slots.
        free: Vec<u32>,
    },
}

impl TaskStore {
    /// Decoded feature row of a **pool-resident** task at `local`.
    fn pooled_row(&self, local: usize, dim: usize) -> &[f32] {
        match self {
            TaskStore::F32(rows) => &rows[local * dim..(local + 1) * dim],
            TaskStore::F16 { slots, slab, .. } => {
                let slot = slots[local] as usize;
                &slab[slot * dim..(slot + 1) * dim]
            }
        }
    }

    /// Admits a task into the pool: decodes its row into a (possibly recycled) slab slot.
    fn admit(&mut self, local: usize, dim: usize) {
        if let TaskStore::F16 {
            bits,
            slots,
            slab,
            free,
        } = self
        {
            let slot = match free.pop() {
                Some(slot) => slot as usize,
                None => {
                    let slot = slab.len() / dim;
                    slab.resize((slot + 1) * dim, 0.0);
                    slot
                }
            };
            slots[local] = slot as u32;
            let src = &bits[local * dim..(local + 1) * dim];
            for (dst, &b) in slab[slot * dim..(slot + 1) * dim].iter_mut().zip(src) {
                *dst = crate::compact::f16_bits_to_f32(b);
            }
        }
    }

    /// Evicts an expired task: its slab slot becomes recyclable.
    fn evict(&mut self, local: usize) {
        if let TaskStore::F16 { slots, free, .. } = self {
            free.push(slots[local]);
        }
    }

    /// Bytes of the store (cold bits/rows plus the decoded slab and its bookkeeping).
    fn bytes(&self) -> usize {
        match self {
            TaskStore::F32(rows) => rows.len() * 4,
            TaskStore::F16 {
                bits,
                slots,
                slab,
                free,
            } => bits.len() * 2 + slots.len() * 4 + slab.len() * 4 + free.len() * 4,
        }
    }
}

/// One shard: the feature arenas and committed dynamic state of the entities it owns
/// (task/worker `i` with `i mod S == shard index`, at local row `i / S`).
#[derive(Debug, Clone)]
pub(crate) struct Shard {
    pub(crate) tasks: TaskStore,
    pub(crate) in_pool: Vec<bool>,
    pub(crate) task_qualities: Vec<f32>,
    pub(crate) task_completions: Vec<u32>,
    pub(crate) completer_qualities: Vec<Vec<f32>>,
    pub(crate) workers: FeatureArena,
    pub(crate) worker_seen: Vec<bool>,
    pub(crate) worker_completions: Vec<u32>,
}

impl Shard {
    /// Decoded feature row of a pool-resident task (called by the view layer).
    pub(crate) fn pooled_task_feature(&self, local: usize, dim: usize) -> &[f32] {
        self.tasks.pooled_row(local, dim)
    }

    /// Applies this shard's pending task events, in event order.
    fn apply_events(&mut self, events: &[Event], n_shards: usize, dim: usize) {
        let mut expired = false;
        for event in events {
            match event.kind {
                EventKind::TaskCreated(id) => {
                    let local = id.index() / n_shards;
                    self.in_pool[local] = true;
                    self.tasks.admit(local, dim);
                }
                EventKind::TaskExpired(id) => {
                    let local = id.index() / n_shards;
                    self.in_pool[local] = false;
                    self.tasks.evict(local);
                    expired = true;
                }
                EventKind::WorkerArrival(_) => {
                    unreachable!("worker arrivals are handled by the top-level scan")
                }
            }
        }
        if expired {
            self.maybe_shrink_slab(dim);
        }
    }

    /// After an expiry burst, repacks the decoded slab down to its live rows once free
    /// slots outnumber them (the high-watermark rule): without this, a churn-heavy
    /// replay keeps peak-pool capacity decoded forever. Slot *values* are an
    /// implementation detail — views resolve rows through `slots` — so the
    /// local-index-order repack is deterministic and preserves bit-identity at every
    /// shard count. [`SLAB_SHRINK_MIN_SLOTS`] keeps tiny pools from repack thrash.
    fn maybe_shrink_slab(&mut self, dim: usize) {
        let TaskStore::F16 {
            slots, slab, free, ..
        } = &mut self.tasks
        else {
            return;
        };
        if dim == 0 {
            return;
        }
        let total = slab.len() / dim;
        let live = total - free.len();
        if total < SLAB_SHRINK_MIN_SLOTS || free.len() <= live {
            return;
        }
        let mut packed = Vec::with_capacity(live * dim);
        for (local, &in_pool) in self.in_pool.iter().enumerate() {
            if !in_pool {
                continue;
            }
            let old = slots[local] as usize;
            let new = packed.len() / dim;
            packed.extend_from_slice(&slab[old * dim..(old + 1) * dim]);
            slots[local] = new as u32;
        }
        *slab = packed;
        free.clear();
    }
}

/// The sharded crowdsourcing platform environment. See the [module docs](self) for the
/// ownership/routing design and the bit-identity argument; the interaction loop and the
/// staged-commit contract are identical to [`Platform`]'s.
#[derive(Debug, Clone)]
pub struct ShardedEnv {
    dataset: Dataset,
    features: FeatureSpace,
    behavior: BehaviorModel,
    /// The single top-level behaviour RNG — one stream in arrival order, same as the
    /// unsharded platform (the cascade model's draw count varies per arrival, so any
    /// per-shard split would change the stream).
    rng: Rng,
    n_shards: usize,
    compact: bool,
    pool: ThreadPool,
    task_dim: usize,
    worker_dim: usize,
    shards: Vec<Shard>,
    /// Available task ids in global creation order — the policy-visible pool.
    routed: Vec<TaskId>,
    /// Per-shard pending task events since the last arrival (scratch, cleared on drain).
    pending: Vec<Vec<Event>>,
    pending_total: usize,
    /// True when an expiration since the last drain requires compacting `routed`.
    expiry_pending: bool,
    /// Compact mode: the current worker's committed feature row, decoded per arrival.
    decoded_worker: Vec<f32>,
    next_event: usize,
    current_time: u64,
    completed_total: usize,
    current: Option<CurrentArrival>,
    step: StepState,
}

impl ShardedEnv {
    /// Creates a sharded platform over a dataset with the default behaviour model.
    pub fn new(dataset: Dataset, features: FeatureSpace, seed: u64, spec: ShardSpec) -> Self {
        ShardedEnv::with_behavior(dataset, features, BehaviorModel::default(), seed, spec)
    }

    /// Creates a sharded platform with an explicit behaviour model.
    pub fn with_behavior(
        dataset: Dataset,
        features: FeatureSpace,
        behavior: BehaviorModel,
        seed: u64,
        spec: ShardSpec,
    ) -> Self {
        let n_shards = spec.n_shards.max(1);
        let compact = spec.compact_features;
        let task_dim = features.task_dim();
        let worker_dim = features.worker_dim();
        let n_tasks = dataset.tasks.len();
        let n_workers = dataset.workers.len();

        // Gather each shard's task feature rows in local order (the task list is in id
        // order, so appending to shard `id % S` lays out local rows 0, 1, 2, …).
        let mut task_rows: Vec<Vec<f32>> = (0..n_shards)
            .map(|s| Vec::with_capacity(task_dim * shard_len(n_tasks, n_shards, s)))
            .collect();
        for task in &dataset.tasks {
            task_rows[task.id.index() % n_shards].extend_from_slice(&features.task_feature(task));
        }
        let initial_worker = features.initial_worker_feature();
        let shards: Vec<Shard> = task_rows
            .into_iter()
            .enumerate()
            .map(|(s, rows)| {
                let n_local_tasks = shard_len(n_tasks, n_shards, s);
                let n_local_workers = shard_len(n_workers, n_shards, s);
                let mut worker_rows = Vec::with_capacity(worker_dim * n_local_workers);
                for _ in 0..n_local_workers {
                    worker_rows.extend_from_slice(&initial_worker);
                }
                Shard {
                    tasks: if compact {
                        TaskStore::F16 {
                            bits: rows
                                .iter()
                                .map(|&v| crate::compact::f32_to_f16_bits(v))
                                .collect(),
                            slots: vec![0; n_local_tasks],
                            slab: Vec::new(),
                            free: Vec::new(),
                        }
                    } else {
                        TaskStore::F32(rows)
                    },
                    in_pool: vec![false; n_local_tasks],
                    task_qualities: vec![0.0; n_local_tasks],
                    task_completions: vec![0; n_local_tasks],
                    completer_qualities: vec![Vec::new(); n_local_tasks],
                    workers: FeatureArena::from_f32(worker_rows, compact),
                    worker_seen: vec![false; n_local_workers],
                    worker_completions: vec![0; n_local_workers],
                }
            })
            .collect();

        ShardedEnv {
            features,
            behavior,
            rng: Rng::seed_from(seed),
            n_shards,
            compact,
            pool: spec.pool,
            task_dim,
            worker_dim,
            shards,
            routed: Vec::new(),
            pending: vec![Vec::new(); n_shards],
            pending_total: 0,
            expiry_pending: false,
            decoded_worker: Vec::new(),
            next_event: 0,
            current_time: 0,
            completed_total: 0,
            current: None,
            step: StepState::default(),
            dataset,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// True when features are stored as binary16 bits.
    pub fn is_compact(&self) -> bool {
        self.compact
    }

    /// The feature space used to embed tasks and workers.
    pub fn feature_space(&self) -> &FeatureSpace {
        &self.features
    }

    /// The underlying immutable dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Ids of the currently available tasks, in global creation order (identical to
    /// [`Platform::available_tasks`] at every arrival).
    pub fn available_tasks(&self) -> &[TaskId] {
        &self.routed
    }

    /// Current Dixit–Stiglitz quality of a task (committed state).
    pub fn task_quality(&self, task: TaskId) -> f32 {
        let ti = task.index();
        self.shards[ti % self.n_shards].task_qualities[ti / self.n_shards]
    }

    /// Current observable feature of a worker (committed state, decoded to f32; owned
    /// because the compact store has no resident f32 row to borrow).
    pub fn worker_feature_owned(&self, worker: WorkerId) -> Vec<f32> {
        let wi = worker.index();
        let mut out = Vec::with_capacity(self.worker_dim);
        self.shards[wi % self.n_shards].workers.decode_row_into(
            wi / self.n_shards,
            self.worker_dim,
            &mut out,
        );
        out
    }

    /// Number of tasks a worker has completed so far.
    pub fn worker_completions(&self, worker: WorkerId) -> usize {
        let wi = worker.index();
        self.shards[wi % self.n_shards].worker_completions[wi / self.n_shards] as usize
    }

    /// Bytes currently held by the feature stores across all shards: task rows (cold
    /// bits plus the decoded pool slab in compact mode) and the worker arenas. The
    /// number the scale bench reports next to peak RSS.
    pub fn feature_arena_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.tasks.bytes() + s.workers.bytes())
            .sum()
    }

    /// Sum of all task qualities. Iterates in **global id order** (not shard order) so
    /// the f32 reduction is bit-identical to [`Platform::total_task_quality`].
    pub fn total_task_quality(&self) -> f32 {
        let n_tasks = self.dataset.tasks.len();
        let mut total = 0.0f32;
        for i in 0..n_tasks {
            total += self.shards[i % self.n_shards].task_qualities[i / self.n_shards];
        }
        total
    }

    /// Total number of committed completions so far.
    pub fn total_completions(&self) -> usize {
        self.completed_total
    }

    /// True when the whole event stream has been consumed.
    pub fn finished(&self) -> bool {
        self.next_event >= self.dataset.events.len()
    }

    /// Current simulation time (minutes since horizon start).
    pub fn current_time(&self) -> u64 {
        self.current_time
    }

    /// Draws one value from the behaviour RNG — the same destructive stream probe as
    /// [`Platform::rng_probe`].
    pub fn rng_probe(&mut self) -> u64 {
        self.rng.below(u32::MAX as usize) as u64
    }

    /// CRC-32 of the committed dynamic state serialised in **canonical (global id)
    /// order** — byte-for-byte the layout of `Platform`'s checkpoint, with worker
    /// features decoded to f32. With f32 arenas this equals
    /// [`Platform::canonical_fingerprint`] whenever the two environments hold identical
    /// state; across shard counts it is equal whenever the replays matched. Call
    /// [`Env::flush`] first.
    pub fn canonical_fingerprint(&self) -> u32 {
        let n_tasks = self.dataset.tasks.len();
        let n_workers = self.dataset.workers.len();
        let s = self.n_shards;
        let mut w = crowd_ckpt::StateWriter::new();
        w.save(&self.rng);
        w.save(&self.routed);
        let in_pool: Vec<bool> = (0..n_tasks)
            .map(|i| self.shards[i % s].in_pool[i / s])
            .collect();
        w.save(&in_pool);
        let qualities: Vec<f32> = (0..n_tasks)
            .map(|i| self.shards[i % s].task_qualities[i / s])
            .collect();
        w.put_f32_slice(&qualities);
        let completions: Vec<u32> = (0..n_tasks)
            .map(|i| self.shards[i % s].task_completions[i / s])
            .collect();
        w.put_u32_slice(&completions);
        let completers: Vec<Vec<f32>> = (0..n_tasks)
            .map(|i| self.shards[i % s].completer_qualities[i / s].clone())
            .collect();
        w.save(&completers);
        let mut worker_features = Vec::with_capacity(n_workers * self.worker_dim);
        let mut row = Vec::with_capacity(self.worker_dim);
        for i in 0..n_workers {
            self.shards[i % s]
                .workers
                .decode_row_into(i / s, self.worker_dim, &mut row);
            worker_features.extend_from_slice(&row);
        }
        w.put_f32_slice(&worker_features);
        let seen: Vec<bool> = (0..n_workers)
            .map(|i| self.shards[i % s].worker_seen[i / s])
            .collect();
        w.save(&seen);
        let worker_completions: Vec<u32> = (0..n_workers)
            .map(|i| self.shards[i % s].worker_completions[i / s])
            .collect();
        w.put_u32_slice(&worker_completions);
        w.put_usize(self.next_event);
        w.put_u64(self.current_time);
        w.put_usize(self.completed_total);
        crowd_ckpt::crc32(&w.into_bytes())
    }

    /// Builds the default feature space for a dataset (same as
    /// [`Platform::default_feature_space`]).
    pub fn default_feature_space(dataset: &Dataset) -> FeatureSpace {
        Platform::default_feature_space(dataset)
    }

    /// Commits the staged effects of the last `apply`, if any — the sharded twin of the
    /// unsharded commit: completer list, quality, completion counters on the task's
    /// owning shard; feature row (quantised in compact mode) and completion counter on
    /// the worker's owning shard.
    fn commit_pending(&mut self) {
        if !self.step.pending {
            return;
        }
        self.step.pending = false;
        let Some(current) = self.current else { return };
        if let Some((task_id, _)) = self.step.completed {
            let ti = task_id.index();
            let worker_quality = self.dataset.workers[current.worker.index()].quality;
            let shard = &mut self.shards[ti % self.n_shards];
            let local = ti / self.n_shards;
            shard.completer_qualities[local].push(worker_quality);
            shard.task_qualities[local] = self.step.new_quality;
            shard.task_completions[local] += 1;
            let wi = current.worker.index();
            let wshard = &mut self.shards[wi % self.n_shards];
            let wlocal = wi / self.n_shards;
            wshard
                .workers
                .write_row(wlocal, self.worker_dim, &self.step.after_feature);
            wshard.worker_completions[wlocal] += 1;
            self.completed_total += 1;
        }
    }

    /// Applies this inter-arrival window's pending task events per shard (in parallel
    /// for large batches), then compacts `routed` if anything expired. Runs inside
    /// `next_arrival`, so `routed` and every membership flag are fresh whenever the
    /// caller can observe them.
    fn drain_pending(&mut self) {
        if self.pending_total > 0 {
            let n_shards = self.n_shards;
            let dim = self.task_dim;
            let parallel =
                n_shards > 1 && !self.pool.is_serial() && self.pending_total >= PAR_EVENT_THRESHOLD;
            if parallel {
                let mut work: Vec<(&mut Shard, &mut Vec<Event>)> = self
                    .shards
                    .iter_mut()
                    .zip(self.pending.iter_mut())
                    .collect();
                self.pool.par_chunks(&mut work, 1, |_, chunk| {
                    for (shard, events) in chunk.iter_mut() {
                        shard.apply_events(events, n_shards, dim);
                        events.clear();
                    }
                });
            } else {
                for (shard, events) in self.shards.iter_mut().zip(self.pending.iter_mut()) {
                    shard.apply_events(events, n_shards, dim);
                    events.clear();
                }
            }
            self.pending_total = 0;
        }
        if self.expiry_pending {
            // One order-preserving compaction per expiring window — the same final list
            // as the unsharded per-event `retain`, in one pass.
            let shards = &self.shards;
            let n = self.n_shards;
            self.routed
                .retain(|&t| shards[t.index() % n].in_pool[t.index() / n]);
            self.expiry_pending = false;
        }
    }

    /// The shared apply implementation — identical protocol and RNG consumption to
    /// [`Platform`]'s, with committed state resolved through the owning shards.
    fn apply_decision(&mut self, decision: &Decision) {
        let current = self
            .current
            .expect("apply() requires a pending arrival; call next_arrival() first");
        self.step.pending = false;

        let ShardedEnv {
            dataset,
            features,
            behavior,
            rng,
            n_shards,
            compact,
            task_dim,
            worker_dim,
            shards,
            decoded_worker,
            step,
            ..
        } = self;
        let n_shards = *n_shards;

        step.shown.clear();
        for &task in decision.shown() {
            let ti = task.index();
            if shards[ti % n_shards].in_pool[ti / n_shards] {
                step.shown.push(task);
            }
        }
        let worker = &dataset.workers[current.worker.index()];
        let completed_position = behavior.browse(
            worker,
            step.shown.iter().map(|t| &dataset.tasks[t.index()]),
            rng,
        );

        step.completed = None;
        step.quality_gain = 0.0;
        step.new_quality = 0.0;
        if let Some(position) = completed_position {
            let task_id = step.shown[position];
            let ti = task_id.index();
            let local = ti / n_shards;
            {
                let shard = &mut shards[ti % n_shards];
                let old_quality = shard.task_qualities[local];
                // Same push/evaluate/pop staging as the unsharded platform.
                let qualities = &mut shard.completer_qualities[local];
                qualities.push(worker.quality);
                step.new_quality = dixit_stiglitz(qualities, dataset.quality_exponent);
                qualities.pop();
                step.quality_gain = step.new_quality - old_quality;
            }

            let wi = current.worker.index();
            step.after_feature.clear();
            if *compact {
                // `decoded_worker` holds the current worker's committed row (decoded at
                // arrival, after the previous commit).
                step.after_feature.extend_from_slice(decoded_worker);
            } else {
                let row = shards[wi % n_shards]
                    .workers
                    .row_f32(wi / n_shards, *worker_dim)
                    .expect("f32 arena in non-compact mode");
                step.after_feature.extend_from_slice(row);
            }
            let task_feature = shards[ti % n_shards].pooled_task_feature(local, *task_dim);
            features.update_worker_feature(&mut step.after_feature, task_feature);
            step.completed = Some((task_id, position));
        }
        step.pending = true;
        step.valid = true;
    }

    /// The current worker's committed feature row, borrowed (f32 mode) or from the
    /// per-arrival decode scratch (compact mode).
    fn current_worker_feature(&self, worker: WorkerId) -> &[f32] {
        if self.compact {
            &self.decoded_worker
        } else {
            let wi = worker.index();
            self.shards[wi % self.n_shards]
                .workers
                .row_f32(wi / self.n_shards, self.worker_dim)
                .expect("f32 arena in non-compact mode")
        }
    }
}

/// Number of entities shard `s` owns out of `n` striped across `n_shards`.
fn shard_len(n: usize, n_shards: usize, s: usize) -> usize {
    (n + n_shards - 1 - s) / n_shards
}

impl Env for ShardedEnv {
    fn next_arrival(&mut self) -> bool {
        self.commit_pending();
        self.step.valid = false;
        self.current = None;
        let mut arrived: Option<WorkerId> = None;
        while self.next_event < self.dataset.events.len() {
            let event = self.dataset.events[self.next_event];
            self.next_event += 1;
            self.current_time = event.time;
            match event.kind {
                EventKind::TaskCreated(id) => {
                    // The event stream *is* the global creation order; appending here
                    // keeps `routed` identical to the unsharded pool.
                    self.routed.push(id);
                    self.pending[id.index() % self.n_shards].push(event);
                    self.pending_total += 1;
                }
                EventKind::TaskExpired(id) => {
                    self.pending[id.index() % self.n_shards].push(event);
                    self.pending_total += 1;
                    self.expiry_pending = true;
                }
                EventKind::WorkerArrival(worker) => {
                    arrived = Some(worker);
                    break;
                }
            }
        }
        // Trailing task events at end-of-stream are applied too, so aggregate state and
        // the fingerprint are well-defined after the replay.
        self.drain_pending();
        let Some(worker) = arrived else { return false };
        let wi = worker.index();
        let shard = &mut self.shards[wi % self.n_shards];
        let wlocal = wi / self.n_shards;
        let is_new_worker = !shard.worker_seen[wlocal];
        shard.worker_seen[wlocal] = true;
        if self.compact {
            let (workers, dim) = (&shard.workers, self.worker_dim);
            workers.decode_row_into(wlocal, dim, &mut self.decoded_worker);
        }
        self.current = Some(CurrentArrival {
            time: self.current_time,
            worker,
            is_new_worker,
        });
        true
    }

    fn arrival(&self) -> ArrivalView<'_> {
        let current = self
            .current
            .expect("arrival() requires a pending arrival; call next_arrival() first");
        ArrivalView::from_sharded(
            current.time,
            current.worker,
            self.current_worker_feature(current.worker),
            self.dataset.workers[current.worker.index()].quality,
            current.is_new_worker,
            ShardedPool {
                ids: &self.routed,
                shards: &self.shards,
                n_shards: self.n_shards,
                feature_dim: self.task_dim,
                tasks: &self.dataset.tasks,
            },
        )
    }

    fn apply(&mut self, decision: &Decision) {
        self.apply_decision(decision);
    }

    fn flush(&mut self) {
        self.commit_pending();
        self.step.valid = false;
    }

    fn feedback(&self) -> FeedbackView<'_> {
        assert!(
            self.step.valid,
            "feedback() requires a prior apply() for the current arrival"
        );
        let current = self.current.expect("feedback() requires a pending arrival");
        // While the effects are staged, the committed worker feature still holds the
        // pre-completion value; the staged buffer holds the post-completion one.
        let before = self.current_worker_feature(current.worker);
        let after: &[f32] = if self.step.completed.is_some() && self.step.pending {
            &self.step.after_feature
        } else {
            before
        };
        FeedbackView {
            time: current.time,
            worker_id: current.worker,
            worker_quality: self.dataset.workers[current.worker.index()].quality,
            shown: &self.step.shown,
            completed: self.step.completed,
            quality_gain: self.step.quality_gain,
            worker_feature_before: before,
            worker_feature_after: after,
        }
    }

    fn finished(&self) -> bool {
        ShardedEnv::finished(self)
    }

    fn current_time(&self) -> u64 {
        ShardedEnv::current_time(self)
    }

    fn total_task_quality(&self) -> f32 {
        ShardedEnv::total_task_quality(self)
    }

    fn total_completions(&self) -> usize {
        ShardedEnv::total_completions(self)
    }
}

/// Checkpoint format (committed dynamic state only): behaviour RNG, shard count (`u32`,
/// validated), compact flag (validated), the routed available list (global creation
/// order), then per shard — in shard order — the locally-indexed committed state:
/// membership flags, qualities (f32 raw bits), completion counts, completer lists and
/// the worker arena (precision tag + rows), seen flags and worker completion counts;
/// finally the event cursor, current time and completed total. Immutable parts (dataset,
/// feature space, task feature bits, decoded slab) are reconstructed, not stored; the
/// slab is rebuilt by re-admitting every routed task. See `docs/CHECKPOINT_FORMAT.md`.
impl crowd_ckpt::SaveState for ShardedEnv {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.save(&self.rng);
        w.put_u32(self.n_shards as u32);
        w.put_bool(self.compact);
        w.save(&self.routed);
        for shard in &self.shards {
            w.save(&shard.in_pool);
            w.put_f32_slice(&shard.task_qualities);
            w.put_u32_slice(&shard.task_completions);
            w.save(&shard.completer_qualities);
            shard.workers.save_into(w);
            w.save(&shard.worker_seen);
            w.put_u32_slice(&shard.worker_completions);
        }
        w.put_usize(self.next_event);
        w.put_u64(self.current_time);
        w.put_usize(self.completed_total);
    }
}

impl crowd_ckpt::LoadState for ShardedEnv {
    fn load_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        let n_tasks = self.dataset.tasks.len();
        let n_workers = self.dataset.workers.len();
        let corrupt = |detail: String| crowd_ckpt::CkptError::Corrupt {
            what: "sharded platform state",
            detail,
        };
        crowd_ckpt::LoadState::load_state(&mut self.rng, r)?;
        let n_shards = r.take_u32()? as usize;
        if n_shards != self.n_shards {
            return Err(corrupt(format!(
                "snapshot was taken with {n_shards} shard(s), this environment has {}",
                self.n_shards
            )));
        }
        let compact = r.take_bool()?;
        if compact != self.compact {
            return Err(corrupt(format!(
                "snapshot precision (compact={compact}) does not match this environment (compact={})",
                self.compact
            )));
        }
        let routed: Vec<TaskId> = r.decode()?;
        if let Some(bad) = routed.iter().find(|t| t.index() >= n_tasks) {
            return Err(corrupt(format!("available task id {bad:?} out of range")));
        }
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let local_tasks = shard_len(n_tasks, n_shards, s);
            let local_workers = shard_len(n_workers, n_shards, s);
            let in_pool: Vec<bool> = r.decode()?;
            let task_qualities = r.take_f32_vec()?;
            let task_completions = r.take_u32_vec()?;
            let completer_qualities: Vec<Vec<f32>> = r.decode()?;
            let workers = FeatureArena::load_from(r, compact)?;
            let worker_seen: Vec<bool> = r.decode()?;
            let worker_completions = r.take_u32_vec()?;
            if in_pool.len() != local_tasks
                || task_qualities.len() != local_tasks
                || task_completions.len() != local_tasks
                || completer_qualities.len() != local_tasks
            {
                return Err(corrupt(format!(
                    "shard {s} task-state arrays sized for {} tasks, shard owns {local_tasks}",
                    in_pool.len()
                )));
            }
            if workers.n_rows(self.worker_dim) != local_workers
                || worker_seen.len() != local_workers
                || worker_completions.len() != local_workers
            {
                return Err(corrupt(format!(
                    "shard {s} worker-state arrays sized for {} workers, shard owns {local_workers}",
                    worker_seen.len()
                )));
            }
            shard.in_pool = in_pool;
            shard.task_qualities = task_qualities;
            shard.task_completions = task_completions;
            shard.completer_qualities = completer_qualities;
            shard.workers = workers;
            shard.worker_seen = worker_seen;
            shard.worker_completions = worker_completions;
            // Reset the decoded slab; it is rebuilt from the routed list below.
            if let TaskStore::F16 { slab, free, .. } = &mut shard.tasks {
                slab.clear();
                free.clear();
            }
        }
        let next_event = r.take_usize()?;
        if next_event > self.dataset.events.len() {
            return Err(corrupt(format!(
                "event cursor {next_event} past the {}-event stream",
                self.dataset.events.len()
            )));
        }
        self.next_event = next_event;
        self.current_time = r.take_u64()?;
        self.completed_total = r.take_usize()?;
        // Rebuild the pool-resident decode slab (compact mode): slot *values* are an
        // implementation detail — views read through them, so any deterministic
        // assignment preserves bit-identity of the continued replay.
        for &id in &routed {
            let ti = id.index();
            let dim = self.task_dim;
            self.shards[ti % n_shards].tasks.admit(ti / n_shards, dim);
        }
        self.routed = routed;
        for pending in &mut self.pending {
            pending.clear();
        }
        self.pending_total = 0;
        self.expiry_pending = false;
        // Per-arrival scratch is dead between steps; start the resumed replay clean.
        self.current = None;
        self.step = StepState::default();
        self.decoded_worker.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SimConfig;

    fn full_pool_replay_fingerprint(env: &mut dyn Env) -> Vec<u64> {
        let mut decision = Decision::new();
        let mut trace = Vec::new();
        while env.next_arrival() {
            let view = env.arrival();
            if view.is_empty() {
                continue;
            }
            decision.clear();
            decision.extend((0..view.n_tasks()).map(|i| view.task_id(i)));
            env.apply(&decision);
            let fb = env.feedback();
            trace.push(
                (fb.quality_gain.to_bits() as u64) << 32
                    | fb.completed.map(|(t, _)| t.index() as u64 + 1).unwrap_or(0),
            );
        }
        env.flush();
        trace
    }

    #[test]
    fn single_shard_replay_is_bit_identical_to_platform() {
        let ds = SimConfig::tiny().generate();
        let fs = Platform::default_feature_space(&ds);
        let mut platform = Platform::new(ds.clone(), fs.clone(), 42);
        let mut sharded = ShardedEnv::new(ds, fs, 42, ShardSpec::new(1));
        let a = full_pool_replay_fingerprint(&mut platform);
        let b = full_pool_replay_fingerprint(&mut sharded);
        assert_eq!(a, b);
        assert_eq!(
            platform.canonical_fingerprint(),
            sharded.canonical_fingerprint()
        );
        assert_eq!(platform.rng_probe(), sharded.rng_probe());
    }

    #[test]
    fn shard_counts_and_pools_do_not_change_the_replay() {
        let ds = SimConfig::tiny().generate();
        let fs = Platform::default_feature_space(&ds);
        let mut reference = ShardedEnv::new(ds.clone(), fs.clone(), 9, ShardSpec::new(1));
        let reference_trace = full_pool_replay_fingerprint(&mut reference);
        for n_shards in [2, 3, 8] {
            let spec = ShardSpec::new(n_shards).with_pool(ThreadPool::new(4));
            let mut env = ShardedEnv::new(ds.clone(), fs.clone(), 9, spec);
            assert_eq!(full_pool_replay_fingerprint(&mut env), reference_trace);
            assert_eq!(
                env.canonical_fingerprint(),
                reference.canonical_fingerprint(),
                "{n_shards} shards"
            );
        }
    }

    #[test]
    fn pool_order_matches_platform_at_every_arrival() {
        let ds = SimConfig::tiny().generate();
        let fs = Platform::default_feature_space(&ds);
        let mut platform = Platform::new(ds.clone(), fs.clone(), 5);
        let mut sharded = ShardedEnv::new(ds, fs, 5, ShardSpec::new(3));
        let mut decision = Decision::new();
        loop {
            let a = platform.next_arrival();
            let b = Env::next_arrival(&mut sharded);
            assert_eq!(a, b);
            if !a {
                break;
            }
            assert_eq!(platform.available_tasks(), sharded.available_tasks());
            let view = platform.arrival();
            if view.is_empty() {
                continue;
            }
            decision.clear();
            decision.extend((0..view.n_tasks()).map(|i| view.task_id(i)));
            platform.apply(&decision);
            sharded.apply(&decision);
        }
    }

    #[test]
    fn compact_mode_is_deterministic_and_close_to_f32() {
        let ds = SimConfig::tiny().generate();
        let fs = Platform::default_feature_space(&ds);
        let spec = ShardSpec::new(2).compact(true);
        // Compact cold storage costs roughly half the f32 arena bytes; measured on
        // fresh environments because the decoded pool slab (bounded by the expiry-burst
        // repack, but sized to the live pool) can mask the saving at tiny scale, where
        // most tasks are pool-resident at once.
        let fresh = ShardedEnv::new(ds.clone(), fs.clone(), 13, spec);
        let f32_env = ShardedEnv::new(ds.clone(), fs.clone(), 13, ShardSpec::new(2));
        assert!(fresh.feature_arena_bytes() < f32_env.feature_arena_bytes() * 3 / 4);
        let mut a = ShardedEnv::new(ds.clone(), fs.clone(), 13, spec);
        let mut b = ShardedEnv::new(ds, fs, 13, spec);
        assert_eq!(
            full_pool_replay_fingerprint(&mut a),
            full_pool_replay_fingerprint(&mut b)
        );
        assert_eq!(a.canonical_fingerprint(), b.canonical_fingerprint());
    }

    #[test]
    fn expiry_bursts_shrink_the_decoded_slab_to_a_high_watermark() {
        use crate::event::sort_events;
        use crate::task::{Task, TaskId};
        use crate::worker::{Worker, WorkerId};
        // A churn-heavy stream: one big creation burst, then almost everything expires
        // at once while a handful of tasks survive.
        let n_tasks = 200usize;
        let survivors = 8usize;
        let mut tasks = Vec::new();
        let mut events = Vec::new();
        for i in 0..n_tasks {
            let id = TaskId(i as u32);
            tasks.push(Task {
                id,
                requester: 0,
                category: (i % 3) as u16,
                domain: (i % 2) as u16,
                award: 40.0 + i as f32,
                created_at: 0,
                deadline: if i < survivors { 10_000 } else { 100 },
            });
            events.push(Event {
                time: 0,
                kind: EventKind::TaskCreated(id),
            });
            if i >= survivors {
                events.push(Event {
                    time: 100,
                    kind: EventKind::TaskExpired(id),
                });
            }
        }
        events.push(Event {
            time: 1,
            kind: EventKind::WorkerArrival(WorkerId(0)),
        });
        events.push(Event {
            time: 101,
            kind: EventKind::WorkerArrival(WorkerId(0)),
        });
        sort_events(&mut events);
        let ds = Dataset {
            tasks,
            workers: vec![Worker {
                id: WorkerId(0),
                quality: 0.5,
                category_affinity: vec![0.5; 3],
                domain_affinity: vec![0.5; 2],
                award_sensitivity: 0.5,
                interest_threshold: 0.5,
                attention_budget: 5,
                activity: 1.0,
            }],
            events,
            n_categories: 3,
            n_domains: 2,
            quality_exponent: 2.0,
            months: 1,
        };
        let fs = Platform::default_feature_space(&ds);
        let mut env = ShardedEnv::new(ds.clone(), fs.clone(), 7, ShardSpec::new(1).compact(true));
        let dim = env.task_dim;
        let slab_len = |env: &ShardedEnv| match &env.shards[0].tasks {
            TaskStore::F16 { slab, free, .. } => (slab.len(), free.len()),
            TaskStore::F32(_) => unreachable!("compact spec"),
        };
        // First arrival drains the creation burst: every task is decoded.
        assert!(env.next_arrival());
        assert_eq!(slab_len(&env), (n_tasks * dim, 0));
        // Second arrival drains the expiry burst: free slots outnumber live ones, so the
        // slab repacks down to the survivors instead of keeping peak capacity.
        assert!(env.next_arrival());
        assert_eq!(slab_len(&env), (survivors * dim, 0));
        assert_eq!(env.available_tasks().len(), survivors);
        // Repacked rows still decode to the cold f16 bits.
        for task in 0..survivors {
            let row = env.shards[0].pooled_task_feature(task, dim);
            if let TaskStore::F16 { bits, .. } = &env.shards[0].tasks {
                let expected: Vec<f32> = bits[task * dim..(task + 1) * dim]
                    .iter()
                    .map(|&b| crate::compact::f16_bits_to_f32(b))
                    .collect();
                assert_eq!(row, expected.as_slice(), "task {task}");
            }
        }
        // The repack is layout-invariant: shard counts still replay bit-identically.
        let mut one = ShardedEnv::new(ds.clone(), fs.clone(), 7, ShardSpec::new(1).compact(true));
        let mut two = ShardedEnv::new(ds, fs, 7, ShardSpec::new(2).compact(true));
        assert_eq!(
            full_pool_replay_fingerprint(&mut one),
            full_pool_replay_fingerprint(&mut two)
        );
        assert_eq!(one.canonical_fingerprint(), two.canonical_fingerprint());
    }

    #[test]
    fn sharded_checkpoint_restores_bit_identically() {
        use crowd_ckpt::{Snapshot, SnapshotFile};
        let ds = SimConfig::tiny().generate();
        let fs = Platform::default_feature_space(&ds);
        for compact in [false, true] {
            let spec = ShardSpec::new(2).compact(compact);
            let mut original = ShardedEnv::new(ds.clone(), fs.clone(), 21, spec);
            let mut decision = Decision::new();
            for _ in 0..40 {
                assert!(Env::next_arrival(&mut original));
                let view = original.arrival();
                if view.is_empty() {
                    continue;
                }
                decision.clear();
                decision.extend((0..view.n_tasks()).map(|i| view.task_id(i)));
                original.apply(&decision);
            }
            Env::flush(&mut original);
            let mut snap = Snapshot::new();
            snap.put("env", &original);
            let file = SnapshotFile::from_bytes(snap.to_bytes()).unwrap();

            let mut resumed = ShardedEnv::new(ds.clone(), fs.clone(), 0, spec);
            file.load_into("env", &mut resumed).unwrap();
            assert_eq!(
                resumed.canonical_fingerprint(),
                original.canonical_fingerprint()
            );
            let tail_a = full_pool_replay_fingerprint(&mut original);
            let tail_b = full_pool_replay_fingerprint(&mut resumed);
            assert_eq!(tail_a, tail_b, "compact={compact}");
            assert_eq!(
                resumed.canonical_fingerprint(),
                original.canonical_fingerprint()
            );
        }
    }

    #[test]
    fn checkpoint_rejects_shard_count_and_precision_mismatches() {
        use crowd_ckpt::{Snapshot, SnapshotFile};
        let ds = SimConfig::tiny().generate();
        let fs = Platform::default_feature_space(&ds);
        let mut env = ShardedEnv::new(ds.clone(), fs.clone(), 3, ShardSpec::new(2));
        Env::next_arrival(&mut env);
        Env::flush(&mut env);
        let mut snap = Snapshot::new();
        snap.put("env", &env);
        let file = SnapshotFile::from_bytes(snap.to_bytes()).unwrap();
        let mut wrong_shards = ShardedEnv::new(ds.clone(), fs.clone(), 3, ShardSpec::new(4));
        assert!(file.load_into("env", &mut wrong_shards).is_err());
        let mut wrong_precision = ShardedEnv::new(ds, fs, 3, ShardSpec::new(2).compact(true));
        assert!(file.load_into("env", &mut wrong_precision).is_err());
    }
}
