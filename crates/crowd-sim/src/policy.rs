//! The [`Policy`] trait — the interface between the platform environment and every task
//! arrangement method (the DDQN agent and all baselines) — plus the owned *record* types
//! ([`ArrivalContext`], [`Action`], [`PolicyFeedback`]).
//!
//! The hot decision loop operates on borrowed views ([`ArrivalView`], [`FeedbackView`])
//! and the reusable [`Decision`] buffer from [`crate::env`]; the owned types here are used
//! for warm-start history, synthetic test harnesses and anywhere a record must outlive the
//! environment step that produced it. Bridge in both directions with
//! [`ArrivalContext::view`] / [`ArrivalView::to_context`](crate::ArrivalView::to_context)
//! and the feedback equivalents.

use crate::env::{ArrivalView, Decision, FeedbackView};
use crate::task::TaskId;
use crate::worker::WorkerId;
use crowd_tensor::ThreadPool;
use std::time::Duration;

/// Update count and wall time of **one** learner branch (e.g. the worker-benefit or the
/// requester-benefit DQN of the dual agent). See [`LearnerTiming`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LearnerBranchTiming {
    /// Branch label for reports (e.g. `"worker"` / `"requester"`).
    pub name: &'static str,
    /// Number of gradient updates this branch performed.
    pub updates: u64,
    /// Wall time this branch spent inside those updates.
    pub total: Duration,
}

impl LearnerBranchTiming {
    /// Average seconds per gradient update of this branch (0 when no update ran).
    pub fn mean_seconds(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.total.as_secs_f64() / self.updates as f64
        }
    }
}

/// Wall time a policy has spent in its gradient/model-update steps — the *learner* slice
/// of `observe`, separated from transition construction and statistics bookkeeping —
/// broken down **per learner branch**.
///
/// Reported by [`Policy::learner_timing`] for policies that track it (the DDQN agent
/// times every `learn` call of each of its two DQNs). The per-branch breakdown exists
/// because the two learners may run **concurrently** (`DdqnAgent` dispatches them on two
/// pool workers): summing their wall times would double-count the overlapped span, so
/// latency reports must use [`LearnerTiming::critical_path`] — the slowest branch, which
/// is what the caller actually waited — while [`LearnerTiming::total_cpu`] remains the
/// summed per-branch time (CPU cost, not latency).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LearnerTiming {
    /// Per-branch update counts and wall times, in a stable branch order.
    pub branches: Vec<LearnerBranchTiming>,
}

impl LearnerTiming {
    /// Timing of a single-branch learner.
    pub fn single(name: &'static str, updates: u64, total: Duration) -> Self {
        LearnerTiming {
            branches: vec![LearnerBranchTiming {
                name,
                updates,
                total,
            }],
        }
    }

    /// Total gradient updates across every branch.
    pub fn updates(&self) -> u64 {
        self.branches.iter().map(|b| b.updates).sum()
    }

    /// Summed per-branch wall time — the CPU cost of learning. When branches run
    /// concurrently this **exceeds** the time the caller waited; use
    /// [`LearnerTiming::critical_path`] for latency.
    pub fn total_cpu(&self) -> Duration {
        self.branches.iter().map(|b| b.total).sum()
    }

    /// The slowest branch's wall time — the learning latency on the critical path when
    /// branches run concurrently (equal to [`LearnerTiming::total_cpu`] for a
    /// single-branch learner).
    pub fn critical_path(&self) -> Duration {
        self.branches
            .iter()
            .map(|b| b.total)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Average critical-path seconds per update *round* (the branches of one round run
    /// concurrently, so a round's updates count once): `critical_path / max branch update
    /// count`. 0 when no update ran.
    pub fn mean_seconds(&self) -> f64 {
        let rounds = self.branches.iter().map(|b| b.updates).max().unwrap_or(0);
        if rounds == 0 {
            0.0
        } else {
            self.critical_path().as_secs_f64() / rounds as f64
        }
    }
}

/// Snapshot of one available task as shown to a policy at decision time (owned record; the
/// hot loop uses [`crate::TaskRef`] instead).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSnapshot {
    /// Task identifier.
    pub id: TaskId,
    /// Task feature vector (Sec. IV-A1).
    pub feature: Vec<f32>,
    /// Current Dixit–Stiglitz quality of the task (Sec. V-A).
    pub quality: f32,
    /// Raw award value.
    pub award: f32,
    /// Category index.
    pub category: u16,
    /// Domain index.
    pub domain: u16,
    /// Expiration time (minutes since horizon start).
    pub deadline: u64,
    /// Number of completions so far.
    pub completions: usize,
}

/// Everything a policy sees when a worker arrives (owned record of the observable part of
/// the MDP state `s_i = [f_wi, f_Ti, q_wi, q_Ti]`; the hot loop uses
/// [`ArrivalView`] instead).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalContext {
    /// Arrival time in minutes since the start of the horizon.
    pub time: u64,
    /// The arriving worker.
    pub worker_id: WorkerId,
    /// The worker's observable feature vector (distribution of recent completions).
    pub worker_feature: Vec<f32>,
    /// The worker's known quality `q_wi ∈ [0, 1]`.
    pub worker_quality: f32,
    /// Whether this worker has been seen before by the platform.
    pub is_new_worker: bool,
    /// Snapshots of the currently available tasks `T_i`.
    pub available: Vec<TaskSnapshot>,
}

impl ArrivalContext {
    /// Position of a task inside [`ArrivalContext::available`], if present.
    pub fn position_of(&self, task: TaskId) -> Option<usize> {
        self.available.iter().position(|t| t.id == task)
    }
}

/// A policy's decision as an owned record (compatibility path; the hot loop writes into a
/// reusable [`Decision`] buffer instead).
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Assign exactly one task (the paper's "recommend one task" setting).
    Assign(TaskId),
    /// Show a ranked list of tasks, best first (the paper's "recommend a sorted list").
    Rank(Vec<TaskId>),
}

impl Action {
    /// The shown tasks in display order (a single assignment is a one-element list).
    /// Allocates; prefer [`Decision::shown`] in anything performance-sensitive.
    pub fn shown_order(&self) -> Vec<TaskId> {
        match self {
            Action::Assign(t) => vec![*t],
            Action::Rank(list) => list.clone(),
        }
    }

    /// Number of shown tasks, without materialising the list.
    pub fn shown_len(&self) -> usize {
        match self {
            Action::Assign(_) => 1,
            Action::Rank(list) => list.len(),
        }
    }
}

/// Outcome of showing an action to the arriving worker (owned record; the hot loop uses
/// [`FeedbackView`] instead). Produced by
/// [`Platform::apply_owned`](crate::platform::Platform::apply_owned) and by
/// [`FeedbackView::to_feedback`].
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyFeedback {
    /// Arrival time of the decision this feedback refers to.
    pub time: u64,
    /// The worker who made the decision.
    pub worker_id: WorkerId,
    /// The worker's quality.
    pub worker_quality: f32,
    /// Tasks shown, in the order they were shown.
    pub shown: Vec<TaskId>,
    /// Completed task and its 0-based position in `shown`, if any task was completed.
    pub completed: Option<(TaskId, usize)>,
    /// Quality gain `q_new - q_old` of the completed task (0 when nothing was completed).
    pub quality_gain: f32,
    /// Worker feature before the completion was applied.
    pub worker_feature_before: Vec<f32>,
    /// Worker feature after the completion was applied (equal to `before` when nothing was
    /// completed).
    pub worker_feature_after: Vec<f32>,
}

impl PolicyFeedback {
    /// MDP(w) immediate reward: 1 when a task was completed, else 0 (Sec. IV-C).
    pub fn completion_reward(&self) -> f32 {
        if self.completed.is_some() {
            1.0
        } else {
            0.0
        }
    }

    /// MDP(r) immediate reward: the quality gain of the completed task (Sec. V-C).
    pub fn quality_reward(&self) -> f32 {
        self.quality_gain
    }
}

/// Checkpoint format: id, feature (f32 slice), quality, award, category, domain (`u16`),
/// deadline (`u64`), completions (`u64`). Owned records appear in snapshots only inside
/// a pre-warm-start session's history; their floats roundtrip as raw bits so a resumed
/// warm start replays the exact same values.
impl crowd_ckpt::SaveState for TaskSnapshot {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.save(&self.id);
        w.put_f32_slice(&self.feature);
        w.put_f32(self.quality);
        w.put_f32(self.award);
        w.put_u16(self.category);
        w.put_u16(self.domain);
        w.put_u64(self.deadline);
        w.put_usize(self.completions);
    }
}

impl crowd_ckpt::DecodeState for TaskSnapshot {
    fn decode_state(r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<Self> {
        Ok(TaskSnapshot {
            id: r.decode()?,
            feature: r.take_f32_vec()?,
            quality: r.take_f32()?,
            award: r.take_f32()?,
            category: r.take_u16()?,
            domain: r.take_u16()?,
            deadline: r.take_u64()?,
            completions: r.take_usize()?,
        })
    }
}

/// Checkpoint format: time, worker id, worker feature (f32 slice), worker quality,
/// new-worker flag, then the available-task snapshots.
impl crowd_ckpt::SaveState for ArrivalContext {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.put_u64(self.time);
        w.save(&self.worker_id);
        w.put_f32_slice(&self.worker_feature);
        w.put_f32(self.worker_quality);
        w.put_bool(self.is_new_worker);
        w.save(&self.available);
    }
}

impl crowd_ckpt::DecodeState for ArrivalContext {
    fn decode_state(r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<Self> {
        Ok(ArrivalContext {
            time: r.take_u64()?,
            worker_id: r.decode()?,
            worker_feature: r.take_f32_vec()?,
            worker_quality: r.take_f32()?,
            is_new_worker: r.take_bool()?,
            available: r.decode()?,
        })
    }
}

/// Checkpoint format: time, worker id + quality, shown task ids, completed
/// `Option<(TaskId, u64)>`, quality gain, worker features before/after.
impl crowd_ckpt::SaveState for PolicyFeedback {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.put_u64(self.time);
        w.save(&self.worker_id);
        w.put_f32(self.worker_quality);
        w.save(&self.shown);
        match self.completed {
            None => w.put_bool(false),
            Some((task, position)) => {
                w.put_bool(true);
                w.save(&task);
                w.put_usize(position);
            }
        }
        w.put_f32(self.quality_gain);
        w.put_f32_slice(&self.worker_feature_before);
        w.put_f32_slice(&self.worker_feature_after);
    }
}

impl crowd_ckpt::DecodeState for PolicyFeedback {
    fn decode_state(r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<Self> {
        Ok(PolicyFeedback {
            time: r.take_u64()?,
            worker_id: r.decode()?,
            worker_quality: r.take_f32()?,
            shown: r.decode()?,
            completed: if r.take_bool()? {
                Some((r.decode()?, r.take_usize()?))
            } else {
                None
            },
            quality_gain: r.take_f32()?,
            worker_feature_before: r.take_f32_vec()?,
            worker_feature_after: r.take_f32_vec()?,
        })
    }
}

/// A task-arrangement policy over the zero-copy view interface.
///
/// The session calls [`Policy::act`] for every worker arrival with a borrowed
/// [`ArrivalView`] and a reusable [`Decision`] buffer to write the ranking into, applies
/// the decision to the environment, then calls [`Policy::observe`] with the same view and
/// the borrowed [`FeedbackView`]. Supervised baselines retrain inside
/// [`Policy::end_of_day`]; RL methods update inside `observe` (Sec. VII-A3's update
/// regimes).
pub trait Policy {
    /// Human-readable name used in reports.
    fn name(&self) -> &str;

    /// Decides what to show to the arriving worker, writing the ranking (or single
    /// assignment) into `decision`. The buffer may hold a previous arrival's decision:
    /// implementations must overwrite it (start with [`Decision::clear`] or
    /// [`Decision::assign`]) rather than append.
    fn act(&mut self, view: &ArrivalView<'_>, decision: &mut Decision);

    /// Receives the worker's feedback for the decision just applied. `view` is identical
    /// to the one `act` saw (environment effects are committed only after this call).
    fn observe(&mut self, view: &ArrivalView<'_>, feedback: &FeedbackView<'_>);

    /// Called at the end of each simulated day (supervised baselines retrain here).
    fn end_of_day(&mut self, _day: usize) {}

    /// Called once after the initialisation month with all historical feedback, so models
    /// can warm-start exactly like the paper initialises from the first month of data.
    /// History records are owned; replay them through views via
    /// [`ArrivalContext::view`] / [`PolicyFeedback::view`].
    fn warm_start(&mut self, _history: &[(ArrivalContext, PolicyFeedback)]) {}

    /// Wall time this policy has spent in gradient/model-update steps, when it tracks
    /// that separately from the rest of `observe` — `None` for policies without a
    /// learner (the default). See [`LearnerTiming`].
    fn learner_timing(&self) -> Option<LearnerTiming> {
        None
    }

    /// Hands the policy a worker pool for its internal parallelism (packed forward
    /// passes, concurrent learner branches). The default ignores it — most policies have
    /// nothing to parallelise; the DDQN agent overrides it. Policies must stay
    /// **deterministic at any thread count**: the pool may only change wall clock, never
    /// results (the workspace-wide bit-identity contract,
    /// `tests/parallel_equivalence.rs`).
    fn set_thread_pool(&mut self, _pool: ThreadPool) {}

    /// Serialises the policy's complete dynamic state (model parameters, optimizer
    /// moments, replay memories, RNG streams, schedule positions) into `w` so a resumed
    /// run continues **bit-identically** to an uninterrupted one. The default returns
    /// [`crowd_ckpt::CkptError::Unsupported`] — policies without checkpoint support are
    /// skipped, not crashed, by checkpointing drivers. Overriders must pair this with
    /// [`Policy::restore_state`] reading the exact same layout.
    ///
    /// (Named `checkpoint_state`/`restore_state` rather than reusing the
    /// `crowd_ckpt::SaveState`/`LoadState` method names so a policy can implement both
    /// traits without method-resolution ambiguity.)
    fn checkpoint_state(&self, _w: &mut crowd_ckpt::StateWriter) -> crowd_ckpt::Result<()> {
        Err(crowd_ckpt::CkptError::Unsupported {
            what: "this policy",
        })
    }

    /// Restores the state written by [`Policy::checkpoint_state`] into a freshly
    /// constructed policy (built from the same configuration). On error the policy is
    /// left in an unspecified (but memory-safe) state and must be discarded.
    fn restore_state(&mut self, _r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        Err(crowd_ckpt::CkptError::Unsupported {
            what: "this policy",
        })
    }
}

/// The canonical boxed policy used by session batches and the experiment line-ups.
///
/// `Send` is part of the contract so `SessionBatch::step_all_parallel` can shard
/// session/policy pairs across pool workers; every policy in the workspace is a plain
/// data structure (matrices, replay buffers, deterministic RNGs), so the bound costs
/// nothing.
pub type BoxedPolicy = Box<dyn Policy + Send>;

/// An owned, thread-movable batched policy — the handle the `crowd-serve` batch worker
/// holds behind its serving loop (the server thread owns the policy outright; clients
/// only ever talk to it through the ingress queue, so no lock is involved).
pub type BoxedBatchedPolicy = Box<dyn BatchedPolicy + Send>;

/// A policy that can decide on `N` arrivals (one per live simulation) in a single call —
/// the entry point batched Q-network inference plugs into.
///
/// # Contract
///
/// `act_batch` must behave exactly like calling [`Policy::act`] once per view, **in view
/// order, with the model parameters the policy holds on entry**. Anything consumed per
/// decision (exploration RNG draws, annealing schedules) must be consumed in the same view
/// order, so a batched round and the equivalent sequence of `act` calls leave the policy —
/// including its RNG stream — in bit-identical states. Each `decisions[i]` buffer may hold
/// a previous round's ranking and must be overwritten, never appended to (same rule as
/// [`Policy::act`]).
///
/// The default implementation simply loops `act`, which satisfies the contract trivially;
/// policies with a real batched path (the DDQN agent packs every view's state rows into
/// one Q-network forward pass) override it. For a *learning* policy the batched round and
/// the sequential round can still diverge: sequential stepping may update parameters
/// between two acts of the same round, while `act_batch` evaluates every view against the
/// entry parameters. With learning paused (e.g. `DdqnAgent::freeze_learning`) the two are
/// bit-identical — `tests/batched_equivalence.rs` proves it end to end.
pub trait BatchedPolicy: Policy {
    /// Decides on every view in one call, writing into the aligned `decisions` buffers.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `views.len() != decisions.len()`.
    fn act_batch(&mut self, views: &[ArrivalView<'_>], decisions: &mut [Decision]) {
        assert_eq!(
            views.len(),
            decisions.len(),
            "one decision buffer per view required"
        );
        for (view, decision) in views.iter().zip(decisions.iter_mut()) {
            self.act(view, decision);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(id: u32) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId(id),
            feature: vec![0.0; 3],
            quality: 0.0,
            award: 1.0,
            category: 0,
            domain: 0,
            deadline: 100,
            completions: 0,
        }
    }

    #[test]
    fn position_lookup() {
        let ctx = ArrivalContext {
            time: 0,
            worker_id: WorkerId(0),
            worker_feature: vec![],
            worker_quality: 0.5,
            is_new_worker: false,
            available: vec![snapshot(5), snapshot(9)],
        };
        assert_eq!(ctx.position_of(TaskId(9)), Some(1));
        assert_eq!(ctx.position_of(TaskId(1)), None);
        assert_eq!(ctx.view().position_of(TaskId(9)), Some(1));
    }

    #[test]
    fn action_shown_order() {
        assert_eq!(Action::Assign(TaskId(3)).shown_order(), vec![TaskId(3)]);
        assert_eq!(Action::Assign(TaskId(3)).shown_len(), 1);
        assert_eq!(
            Action::Rank(vec![TaskId(1), TaskId(2)]).shown_order(),
            vec![TaskId(1), TaskId(2)]
        );
        assert_eq!(Action::Rank(vec![TaskId(1), TaskId(2)]).shown_len(), 2);
    }

    #[test]
    fn feedback_rewards() {
        let fb = PolicyFeedback {
            time: 0,
            worker_id: WorkerId(0),
            worker_quality: 0.7,
            shown: vec![TaskId(1)],
            completed: Some((TaskId(1), 0)),
            quality_gain: 0.4,
            worker_feature_before: vec![],
            worker_feature_after: vec![],
        };
        assert_eq!(fb.completion_reward(), 1.0);
        assert_eq!(fb.quality_reward(), 0.4);
        assert_eq!(fb.view().completion_reward(), 1.0);

        let skipped = PolicyFeedback {
            completed: None,
            quality_gain: 0.0,
            ..fb
        };
        assert_eq!(skipped.completion_reward(), 0.0);
        assert_eq!(skipped.quality_reward(), 0.0);
    }
}
