//! The time-ordered event stream replayed by the [`Platform`](crate::Platform).

use crate::task::TaskId;
use crate::worker::WorkerId;

/// What happened at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A requester published a new task; it joins the available pool.
    TaskCreated(TaskId),
    /// A task reached its deadline; it leaves the available pool.
    TaskExpired(TaskId),
    /// A worker arrived and must be shown a task (or a ranked list of tasks).
    WorkerArrival(WorkerId),
}

/// A timestamped event. Times are minutes since the start of the simulated horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Minutes since the start of the horizon.
    pub time: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// True for worker-arrival events (the only events that require a decision).
    pub fn is_arrival(&self) -> bool {
        matches!(self.kind, EventKind::WorkerArrival(_))
    }
}

/// Sorts events by time; ties are broken so that task creations come before arrivals and
/// arrivals before expirations, ensuring a worker arriving exactly at a task's creation time
/// sees it and one arriving exactly at the deadline does not.
pub fn sort_events(events: &mut [Event]) {
    fn rank(kind: &EventKind) -> u8 {
        match kind {
            EventKind::TaskCreated(_) => 0,
            EventKind::WorkerArrival(_) => 1,
            EventKind::TaskExpired(_) => 2,
        }
    }
    events.sort_by(|a, b| a.time.cmp(&b.time).then(rank(&a.kind).cmp(&rank(&b.kind))));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_detection() {
        let e = Event {
            time: 5,
            kind: EventKind::WorkerArrival(WorkerId(0)),
        };
        assert!(e.is_arrival());
        let e2 = Event {
            time: 5,
            kind: EventKind::TaskCreated(TaskId(0)),
        };
        assert!(!e2.is_arrival());
    }

    #[test]
    fn sort_breaks_ties_in_create_arrive_expire_order() {
        let mut events = vec![
            Event {
                time: 10,
                kind: EventKind::TaskExpired(TaskId(1)),
            },
            Event {
                time: 10,
                kind: EventKind::WorkerArrival(WorkerId(2)),
            },
            Event {
                time: 10,
                kind: EventKind::TaskCreated(TaskId(3)),
            },
            Event {
                time: 5,
                kind: EventKind::TaskExpired(TaskId(0)),
            },
        ];
        sort_events(&mut events);
        assert_eq!(events[0].time, 5);
        assert!(matches!(events[1].kind, EventKind::TaskCreated(_)));
        assert!(matches!(events[2].kind, EventKind::WorkerArrival(_)));
        assert!(matches!(events[3].kind, EventKind::TaskExpired(_)));
    }
}
