//! Synthetic CrowdSpring-replica dataset generation (paper Sec. VII-A1 and VII-C).
//!
//! The crawled dataset is not public, so the generator produces a dataset with the same
//! *reported* statistics: roughly 180 new and 180 expiring tasks per month, a pool of ~50–60
//! available tasks at any time, thousands of worker arrivals per month whose same-worker
//! revisit gaps follow the Fig. 5 mixture, and worker qualities in `[0, 1]`.
//! The scale knobs ([`SimConfig`]) let experiments run a faithfully-sized replica or a
//! reduced one that finishes on a laptop CPU.

use crate::arrival::GapDistribution;
use crate::dataset::{Dataset, MINUTES_PER_DAY, MINUTES_PER_MONTH};
use crate::event::{sort_events, Event, EventKind};
use crate::task::{Task, TaskId};
use crate::worker::{Worker, WorkerId};
use crowd_tensor::Rng;

/// Configuration of the synthetic dataset generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of simulated months (the first month is the initialisation month).
    pub months: usize,
    /// Number of registered workers.
    pub n_workers: usize,
    /// Worker arrivals per month (total across all workers).
    pub arrivals_per_month: usize,
    /// New tasks created per month.
    pub tasks_per_month: usize,
    /// Number of task categories.
    pub n_categories: usize,
    /// Number of task domains.
    pub n_domains: usize,
    /// Number of requesters.
    pub n_requesters: usize,
    /// Minimum task lifetime in days.
    pub min_task_days: u32,
    /// Maximum task lifetime in days.
    pub max_task_days: u32,
    /// Maximum award value (award is drawn log-normally and clamped to this).
    pub max_award: f32,
    /// Dixit–Stiglitz exponent `p` (the paper uses 2).
    pub quality_exponent: f32,
    /// Same-worker revisit gap model.
    pub gap: GapDistribution,
    /// RNG seed.
    pub seed: u64,
}

impl SimConfig {
    /// The full-scale CrowdSpring replica: 13 months, ~1700 workers, ~4200 arrivals and ~180
    /// new tasks per month (Fig. 6). Running every policy on this takes hours on CPU; use
    /// [`SimConfig::small`] for tests and the reduced default experiment scale.
    pub fn crowdspring_replica() -> Self {
        SimConfig {
            months: 13,
            n_workers: 1700,
            arrivals_per_month: 4200,
            tasks_per_month: 180,
            n_categories: 10,
            n_domains: 12,
            n_requesters: 400,
            min_task_days: 5,
            max_task_days: 14,
            max_award: 200.0,
            quality_exponent: 2.0,
            gap: GapDistribution::default(),
            seed: 2020,
        }
    }

    /// A demand-scale synthetic tier far beyond the paper's crawl: ~590× its workers
    /// and ~100× its tasks over a 3-month horizon, with short (1–3 day) task lifetimes
    /// so the live pool stays rankable. Built for the sharded platform
    /// ([`crate::sharded::ShardedEnv`]) — the scale bench (`benches/sharded_scale.rs`)
    /// replays it across shard counts, and `CROWD_SCALE=massive` drives it from the
    /// experiment binaries. The flat single-arena [`Platform`](crate::Platform) still
    /// replays it, just slower and at full-precision RSS.
    pub fn massive() -> Self {
        SimConfig {
            months: 3,
            n_workers: 1_000_000,
            arrivals_per_month: 320_000,
            tasks_per_month: 80_000,
            n_categories: 24,
            n_domains: 24,
            n_requesters: 5_000,
            min_task_days: 1,
            max_task_days: 3,
            max_award: 200.0,
            quality_exponent: 2.0,
            gap: GapDistribution::default(),
            seed: 42,
        }
    }

    /// A reduced-scale dataset with the same shape, suitable for tests and quick experiments.
    pub fn small() -> Self {
        SimConfig {
            months: 4,
            n_workers: 120,
            arrivals_per_month: 600,
            tasks_per_month: 60,
            n_categories: 6,
            n_domains: 8,
            n_requesters: 40,
            min_task_days: 5,
            max_task_days: 14,
            max_award: 200.0,
            quality_exponent: 2.0,
            gap: GapDistribution::default(),
            seed: 7,
        }
    }

    /// A tiny dataset for unit tests.
    pub fn tiny() -> Self {
        SimConfig {
            months: 2,
            n_workers: 20,
            arrivals_per_month: 120,
            tasks_per_month: 20,
            n_categories: 4,
            n_domains: 4,
            n_requesters: 8,
            min_task_days: 4,
            max_task_days: 10,
            max_award: 100.0,
            quality_exponent: 2.0,
            gap: GapDistribution::default(),
            seed: 3,
        }
    }

    /// Horizon length in minutes.
    pub fn horizon(&self) -> u64 {
        self.months as u64 * MINUTES_PER_MONTH
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = Rng::seed_from(self.seed);
        let workers = self.generate_workers(&mut rng);
        let tasks = self.generate_tasks(&mut rng);
        let mut events = Vec::new();
        for task in &tasks {
            events.push(Event {
                time: task.created_at,
                kind: EventKind::TaskCreated(task.id),
            });
            events.push(Event {
                time: task.deadline,
                kind: EventKind::TaskExpired(task.id),
            });
        }
        self.generate_arrivals(&workers, &mut events, &mut rng);
        sort_events(&mut events);
        Dataset {
            tasks,
            workers,
            events,
            n_categories: self.n_categories,
            n_domains: self.n_domains,
            quality_exponent: self.quality_exponent,
            months: self.months,
        }
    }

    fn generate_workers(&self, rng: &mut Rng) -> Vec<Worker> {
        (0..self.n_workers)
            .map(|i| {
                // Each worker strongly likes a couple of categories/domains and is lukewarm
                // about the rest; policies must discover which from completions.
                let mut category_affinity = vec![0.0; self.n_categories];
                for a in category_affinity.iter_mut() {
                    *a = rng.uniform(0.0, 0.25);
                }
                let favourites = 1 + rng.below(2);
                for _ in 0..=favourites {
                    let c = rng.below(self.n_categories);
                    category_affinity[c] = rng.uniform(0.7, 1.0);
                }
                let mut domain_affinity = vec![0.0; self.n_domains];
                for a in domain_affinity.iter_mut() {
                    *a = rng.uniform(0.0, 0.4);
                }
                let fav_domains = 1 + rng.below(3);
                for _ in 0..=fav_domains {
                    let d = rng.below(self.n_domains);
                    domain_affinity[d] = rng.uniform(0.6, 1.0);
                }
                // Heavy-tailed activity: a minority of workers does most of the visits.
                let activity = rng.exponential(1.0) + 0.05;
                Worker {
                    id: WorkerId(i as u32),
                    quality: rng.beta(5.0, 2.0),
                    category_affinity,
                    domain_affinity,
                    award_sensitivity: rng.uniform(0.1, 0.5),
                    interest_threshold: rng.uniform(0.55, 0.8),
                    attention_budget: rng.range(5, 16),
                    activity,
                }
            })
            .collect()
    }

    fn generate_tasks(&self, rng: &mut Rng) -> Vec<Task> {
        // Zipf-like popularity over categories/domains so some categories are rare — the
        // imbalance the paper argues pure worker-side recommendation cannot serve.
        let cat_weights: Vec<f32> = (0..self.n_categories)
            .map(|i| 1.0 / (1.0 + i as f32).sqrt())
            .collect();
        let dom_weights: Vec<f32> = (0..self.n_domains)
            .map(|i| 1.0 / (1.0 + i as f32).sqrt())
            .collect();
        let horizon = self.horizon();
        let mut tasks = Vec::with_capacity(self.months * self.tasks_per_month);
        let mut id = 0u32;
        for month in 0..self.months {
            let month_start = month as u64 * MINUTES_PER_MONTH;
            for _ in 0..self.tasks_per_month {
                let created_at = month_start + rng.below(MINUTES_PER_MONTH as usize) as u64;
                let lifetime_days =
                    rng.range(self.min_task_days as usize, self.max_task_days as usize + 1) as u64;
                let deadline = (created_at + lifetime_days * MINUTES_PER_DAY).min(horizon);
                let award =
                    (rng.normal(0.0, 0.6).exp() * self.max_award * 0.25).clamp(1.0, self.max_award);
                tasks.push(Task {
                    id: TaskId(id),
                    requester: rng.below(self.n_requesters) as u32,
                    category: rng.categorical(&cat_weights).unwrap_or(0) as u16,
                    domain: rng.categorical(&dom_weights).unwrap_or(0) as u16,
                    award,
                    created_at,
                    deadline,
                });
                id += 1;
            }
        }
        tasks
    }

    fn generate_arrivals(&self, workers: &[Worker], events: &mut Vec<Event>, rng: &mut Rng) {
        let horizon = self.horizon();
        let target_total = self.arrivals_per_month * self.months;
        let total_activity: f32 = workers.iter().map(|w| w.activity).sum();
        for worker in workers {
            let share = worker.activity / total_activity.max(1e-9);
            let mut count = (target_total as f32 * share).round() as usize;
            // Bernoulli rounding for the fractional part so the total stays close to target
            // even when individual shares are tiny.
            if count == 0 && rng.chance(target_total as f32 * share) {
                count = 1;
            }
            if count == 0 {
                continue;
            }
            let gaps = self.gap.sample_many(count.saturating_sub(1), rng);
            let span: u64 = gaps.iter().sum();
            // If the revisit chain does not fit in the horizon, compress it proportionally —
            // this only triggers for extremely active workers.
            let scale = if span as f64 > 0.9 * horizon as f64 {
                0.9 * horizon as f64 / span as f64
            } else {
                1.0
            };
            let slack = horizon.saturating_sub((span as f64 * scale) as u64);
            let mut t = rng.below(slack.max(1) as usize) as u64;
            events.push(Event {
                time: t.min(horizon - 1),
                kind: EventKind::WorkerArrival(worker.id),
            });
            for gap in gaps {
                t += ((gap as f64 * scale).round() as u64).max(1);
                if t >= horizon {
                    break;
                }
                events.push(Event {
                    time: t,
                    kind: EventKind::WorkerArrival(worker.id),
                });
            }
        }
    }
}

/// Resamples worker arrivals with replacement at the given `rate` (Fig. 10(a)/(b): rates
/// 0.5–2.0 of the original arrival count). Arrivals sampled more than once get a jitter of
/// roughly one day (|N(1 day, 1 day)|) so duplicated arrival times stay distinct, exactly as
/// described in Sec. VII-C1.
pub fn resample_arrivals(dataset: &Dataset, rate: f32, rng: &mut Rng) -> Dataset {
    let arrivals: Vec<Event> = dataset
        .events
        .iter()
        .copied()
        .filter(Event::is_arrival)
        .collect();
    let others: Vec<Event> = dataset
        .events
        .iter()
        .copied()
        .filter(|e| !e.is_arrival())
        .collect();
    let target = ((arrivals.len() as f32) * rate).round() as usize;
    let horizon = dataset.horizon();
    let mut sampled = Vec::with_capacity(target);
    let mut times_chosen = vec![0usize; arrivals.len()];
    for _ in 0..target {
        let idx = rng.below(arrivals.len().max(1));
        let mut event = arrivals[idx];
        if times_chosen[idx] > 0 {
            let jitter = rng
                .normal(MINUTES_PER_DAY as f32, MINUTES_PER_DAY as f32)
                .abs() as u64;
            event.time = (event.time + jitter).min(horizon.saturating_sub(1));
        }
        times_chosen[idx] += 1;
        sampled.push(event);
    }
    let mut events = others;
    events.extend(sampled);
    sort_events(&mut events);
    Dataset {
        events,
        ..dataset.clone()
    }
}

/// Adds Gaussian noise `N(mean, std)` to every worker's quality, clamping to `[0, 1]`
/// (Fig. 10(c): noise distributions N(−0.4, 0.2) … N(0.2, 0.2)).
pub fn perturb_worker_qualities(dataset: &Dataset, mean: f32, std: f32, rng: &mut Rng) -> Dataset {
    let mut out = dataset.clone();
    for w in &mut out.workers {
        w.perturb_quality(rng.normal(mean, std));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_counts_match_config() {
        let cfg = SimConfig::tiny();
        let ds = cfg.generate();
        assert_eq!(ds.tasks.len(), cfg.months * cfg.tasks_per_month);
        assert_eq!(ds.workers.len(), cfg.n_workers);
        let arrivals = ds.n_arrivals();
        let target = cfg.arrivals_per_month * cfg.months;
        let rel = (arrivals as f32 - target as f32).abs() / target as f32;
        assert!(rel < 0.25, "arrivals {arrivals} vs target {target}");
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let cfg = SimConfig::tiny();
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.events, b.events);
        assert_eq!(a.tasks, b.tasks);
    }

    #[test]
    fn events_are_sorted_and_within_horizon() {
        let cfg = SimConfig::tiny();
        let ds = cfg.generate();
        let horizon = cfg.horizon();
        for pair in ds.events.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        assert!(ds.events.iter().all(|e| e.time <= horizon));
    }

    #[test]
    fn tasks_have_valid_lifetimes_and_attributes() {
        let cfg = SimConfig::tiny();
        let ds = cfg.generate();
        for t in &ds.tasks {
            assert!(t.deadline >= t.created_at);
            assert!((t.category as usize) < cfg.n_categories);
            assert!((t.domain as usize) < cfg.n_domains);
            assert!(t.award >= 1.0 && t.award <= cfg.max_award);
        }
    }

    #[test]
    fn worker_qualities_are_probabilities() {
        let ds = SimConfig::tiny().generate();
        assert!(ds.workers.iter().all(|w| (0.0..=1.0).contains(&w.quality)));
    }

    #[test]
    fn pool_size_is_in_the_expected_range_for_replica_like_ratio() {
        // tasks_per_month=60 with 5-14 day lifetimes gives an average pool of roughly
        // 60 * 9.5 / 30 ≈ 19 available tasks; check the generator is in that ballpark.
        let cfg = SimConfig::small();
        let ds = cfg.generate();
        let probe = cfg.horizon() / 2;
        let available = ds.tasks.iter().filter(|t| t.is_available_at(probe)).count();
        assert!(
            (8..=40).contains(&available),
            "available at midpoint: {available}"
        );
    }

    #[test]
    fn resample_changes_arrival_count_proportionally() {
        let ds = SimConfig::tiny().generate();
        let mut rng = Rng::seed_from(0);
        let doubled = resample_arrivals(&ds, 2.0, &mut rng);
        let halved = resample_arrivals(&ds, 0.5, &mut rng);
        let base = ds.n_arrivals() as f32;
        assert!((doubled.n_arrivals() as f32 - 2.0 * base).abs() / base < 0.05);
        assert!((halved.n_arrivals() as f32 - 0.5 * base).abs() / base < 0.05);
        // Non-arrival events are preserved exactly.
        let count_non = |d: &Dataset| d.events.iter().filter(|e| !e.is_arrival()).count();
        assert_eq!(count_non(&ds), count_non(&doubled));
    }

    #[test]
    fn quality_perturbation_shifts_mean() {
        let ds = SimConfig::tiny().generate();
        let mut rng = Rng::seed_from(1);
        let down = perturb_worker_qualities(&ds, -0.4, 0.2, &mut rng);
        let up = perturb_worker_qualities(&ds, 0.2, 0.2, &mut rng);
        let mean =
            |d: &Dataset| d.workers.iter().map(|w| w.quality).sum::<f32>() / d.workers.len() as f32;
        assert!(mean(&down) < mean(&ds));
        assert!(mean(&up) >= mean(&ds) - 0.05);
        assert!(down
            .workers
            .iter()
            .all(|w| (0.0..=1.0).contains(&w.quality)));
    }
}
