//! Compact feature storage: IEEE 754 half-precision (binary16) conversion and the
//! [`FeatureArena`] that backs the sharded platform's feature stores.
//!
//! The container has no external crates and stable Rust has no native `f16`, so the
//! conversions are hand-rolled: [`f32_to_f16_bits`] rounds to nearest-even (the IEEE
//! default), [`f16_bits_to_f32`] is exact (every binary16 value is representable in
//! `f32`). Together they pin the quantisation contract of the compact arenas:
//!
//! * **Task features are lossless.** The feature space emits one-hot 0.0/1.0 rows, and
//!   both values are exactly representable in binary16, so a compact task arena decodes
//!   to the exact same bits the f32 arena would hold.
//! * **Worker features quantise on every commit.** A committed worker feature is the
//!   f16 round-trip `f16_bits_to_f32(f32_to_f16_bits(x))` of the f32 value the update
//!   rule computed; the next arrival observes exactly that round-tripped value. Relative
//!   error is bounded by 2⁻¹¹ per component (half's 11-bit significand); the error
//!   compounds across commits by construction, which is why compact storage is an
//!   explicit opt-in ([`crate::ShardSpec::compact_features`]) and the default f32 path
//!   stays bit-identical to the unsharded [`Platform`](crate::Platform).

/// Converts an `f32` to IEEE 754 binary16 bits, rounding to nearest-even.
///
/// Overflow (|x| > 65504 after rounding) becomes signed infinity; values below the
/// smallest subnormal half underflow to signed zero; NaN maps to a quiet NaN.
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7fff_ffff;
    if abs >= 0x7f80_0000 {
        // Infinity stays infinity; any NaN becomes the canonical quiet NaN.
        return if abs > 0x7f80_0000 {
            sign | 0x7e00
        } else {
            sign | 0x7c00
        };
    }
    // Rebias the exponent from f32 (bias 127) to f16 (bias 15).
    let exp = (abs >> 23) as i32 - 127 + 15;
    let man = abs & 0x007f_ffff;
    if exp >= 0x1f {
        return sign | 0x7c00; // overflow → infinity
    }
    if exp <= 0 {
        // Subnormal half (or zero). Shift the significand — with its implicit leading
        // one — far enough right that the result's exponent field is zero.
        if exp < -10 {
            return sign; // underflows past the smallest subnormal → signed zero
        }
        let man = man | 0x0080_0000;
        let shift = (14 - exp) as u32; // 14..=24
        let half = man >> shift;
        let rem = man & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let round_up = rem > halfway || (rem == halfway && half & 1 == 1);
        return sign | (half + round_up as u32) as u16;
    }
    let half = ((exp as u32) << 10) | (man >> 13);
    let rem = man & 0x1fff;
    let round_up = rem > 0x1000 || (rem == 0x1000 && half & 1 == 1);
    // Rounding may carry into the exponent field; the carry is correct by construction
    // (1.111…×2ᵉ rounds to 1.000…×2ᵉ⁺¹), including the carry into infinity.
    sign | (half + round_up as u32) as u16
}

/// Converts IEEE 754 binary16 bits back to the exactly-equal `f32`.
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = (bits >> 10) & 0x1f;
    let man = (bits & 0x3ff) as u32;
    let bits32 = match exp {
        0 => {
            if man == 0 {
                sign // signed zero
            } else {
                // Subnormal half: normalise into an f32 with an explicit exponent.
                let mut exp32: u32 = 127 - 15 + 1;
                let mut man = man;
                while man & 0x400 == 0 {
                    man <<= 1;
                    exp32 -= 1;
                }
                sign | (exp32 << 23) | ((man & 0x3ff) << 13)
            }
        }
        0x1f => sign | 0x7f80_0000 | (man << 13), // infinity / NaN
        _ => sign | ((exp as u32 + 127 - 15) << 23) | (man << 13),
    };
    f32::from_bits(bits32)
}

/// The f16 round-trip a compact arena applies to every stored value.
pub fn f16_round_trip(value: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(value))
}

/// A feature arena of fixed-width f32 rows, stored either at full precision or as
/// binary16 bits (half the bytes). Rows are read back as `f32`: the f32 variant borrows
/// them zero-copy, the f16 variant decodes into a caller-provided buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureArena {
    /// Full-precision rows; reads borrow straight from the arena.
    F32(Vec<f32>),
    /// Rows stored as binary16 bits; every write quantises ([`f16_round_trip`]).
    F16(Vec<u16>),
}

impl FeatureArena {
    /// Builds an arena from f32 row data, quantising once when `compact` is set.
    pub fn from_f32(data: Vec<f32>, compact: bool) -> Self {
        if compact {
            FeatureArena::F16(data.iter().map(|&v| f32_to_f16_bits(v)).collect())
        } else {
            FeatureArena::F32(data)
        }
    }

    /// True for the binary16 variant.
    pub fn is_compact(&self) -> bool {
        matches!(self, FeatureArena::F16(_))
    }

    /// Number of `dim`-wide rows.
    pub fn n_rows(&self, dim: usize) -> usize {
        match self {
            FeatureArena::F32(v) => v.len() / dim.max(1),
            FeatureArena::F16(v) => v.len() / dim.max(1),
        }
    }

    /// Bytes of the stored representation (the RSS the arena costs).
    pub fn bytes(&self) -> usize {
        match self {
            FeatureArena::F32(v) => v.len() * 4,
            FeatureArena::F16(v) => v.len() * 2,
        }
    }

    /// Borrows row `row` when the arena is full-precision; `None` for f16 (use
    /// [`FeatureArena::decode_row_into`]).
    pub fn row_f32(&self, row: usize, dim: usize) -> Option<&[f32]> {
        match self {
            FeatureArena::F32(v) => Some(&v[row * dim..(row + 1) * dim]),
            FeatureArena::F16(_) => None,
        }
    }

    /// Decodes row `row` into `out` (cleared first; no-alloc once capacity has grown).
    pub fn decode_row_into(&self, row: usize, dim: usize, out: &mut Vec<f32>) {
        out.clear();
        match self {
            FeatureArena::F32(v) => out.extend_from_slice(&v[row * dim..(row + 1) * dim]),
            FeatureArena::F16(v) => out.extend(
                v[row * dim..(row + 1) * dim]
                    .iter()
                    .map(|&b| f16_bits_to_f32(b)),
            ),
        }
    }

    /// Overwrites row `row` from f32 values, quantising in the f16 variant.
    pub fn write_row(&mut self, row: usize, dim: usize, src: &[f32]) {
        debug_assert_eq!(src.len(), dim);
        match self {
            FeatureArena::F32(v) => v[row * dim..(row + 1) * dim].copy_from_slice(src),
            FeatureArena::F16(v) => {
                for (slot, &value) in v[row * dim..(row + 1) * dim].iter_mut().zip(src) {
                    *slot = f32_to_f16_bits(value);
                }
            }
        }
    }

    /// Serialises the arena: a variant tag, then the row data (f32 raw bits via the
    /// standard f32-slice encoding, or the f16 bit vector as length + little-endian
    /// byte pairs).
    pub fn save_into(&self, w: &mut crowd_ckpt::StateWriter) {
        match self {
            FeatureArena::F32(v) => {
                w.put_u8(0);
                w.put_f32_slice(v);
            }
            FeatureArena::F16(v) => {
                w.put_u8(1);
                w.put_usize(v.len());
                for &bits in v {
                    w.put_u16(bits);
                }
            }
        }
    }

    /// Reads back [`FeatureArena::save_into`]. The variant tag is validated against
    /// `compact` so a snapshot taken at one precision cannot silently load into the
    /// other.
    pub fn load_from(
        r: &mut crowd_ckpt::StateReader<'_>,
        compact: bool,
    ) -> crowd_ckpt::Result<Self> {
        let tag = r.take_u8()?;
        let corrupt = |detail: String| crowd_ckpt::CkptError::Corrupt {
            what: "feature arena",
            detail,
        };
        match (tag, compact) {
            (0, false) => Ok(FeatureArena::F32(r.take_f32_vec()?)),
            (1, true) => {
                let len = r.take_usize()?;
                let mut bits = Vec::with_capacity(len);
                for _ in 0..len {
                    bits.push(r.take_u16()?);
                }
                Ok(FeatureArena::F16(bits))
            }
            (0, true) | (1, false) => Err(corrupt(format!(
                "snapshot stores {} rows, this environment is configured for {}",
                if tag == 0 { "f32" } else { "f16" },
                if compact { "f16" } else { "f32" },
            ))),
            (tag, _) => Err(corrupt(format!("unknown arena variant tag {tag}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_half_values_convert_exactly() {
        // (f32, expected binary16 bits) pairs from the IEEE 754 tables.
        let cases: &[(f32, u16)] = &[
            (0.0, 0x0000),
            (-0.0, 0x8000),
            (1.0, 0x3c00),
            (-2.0, 0xc000),
            (0.5, 0x3800),
            (65504.0, 0x7bff),        // largest finite half
            (6.103_515_6e-5, 0x0400), // smallest normal half, 2^-14
            (5.960_464_5e-8, 0x0001), // smallest subnormal half, 2^-24
            (f32::INFINITY, 0x7c00),
            (f32::NEG_INFINITY, 0xfc00),
        ];
        for &(value, bits) in cases {
            assert_eq!(f32_to_f16_bits(value), bits, "encoding {value}");
            assert_eq!(
                f16_bits_to_f32(bits).to_bits(),
                value.to_bits(),
                "decoding {bits:#06x}"
            );
        }
        // 0.1 is not representable; the nearest half is 0x2e66 ≈ 0.0999756.
        assert_eq!(f32_to_f16_bits(0.1), 0x2e66);
        assert!((f16_bits_to_f32(0x2e66) - 0.1).abs() < 1e-4);
    }

    #[test]
    fn rounding_is_nearest_even_and_saturating() {
        // 2^-25 is exactly halfway between 0 and the smallest subnormal; even → 0.
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-25)), 0x0000);
        // Just above the halfway point rounds up to the smallest subnormal.
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-25) * 1.5), 0x0001);
        // Largest finite half + one f32 ulp still rounds back to 65504...
        assert_eq!(f32_to_f16_bits(65504.001), 0x7bff);
        // ...but 65520 is halfway to the next (unrepresentable) step and rounds to ∞.
        assert_eq!(f32_to_f16_bits(65520.0), 0x7c00);
        assert_eq!(f32_to_f16_bits(1e9), 0x7c00);
        assert_eq!(f32_to_f16_bits(-1e9), 0xfc00);
        // NaN is preserved as a quiet NaN.
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn round_trip_is_idempotent() {
        // Decoding then re-encoding must reproduce the same bits for every finite half,
        // i.e. the round-trip is a projection. Exhaustive over all 2^16 bit patterns.
        for bits in 0..=u16::MAX {
            let value = f16_bits_to_f32(bits);
            if value.is_nan() {
                continue;
            }
            assert_eq!(f32_to_f16_bits(value), bits, "pattern {bits:#06x}");
        }
    }

    #[test]
    fn round_trip_error_is_bounded() {
        let mut rng = crowd_tensor::Rng::seed_from(11);
        for _ in 0..10_000 {
            let x = rng.uniform(-4.0, 4.0);
            let rt = f16_round_trip(x);
            assert!(
                (rt - x).abs() <= x.abs().max(6.2e-5) * (1.0 / 1024.0),
                "{x} round-tripped to {rt}"
            );
            // Projection: a second trip is exact.
            assert_eq!(f16_round_trip(rt).to_bits(), rt.to_bits());
        }
    }

    #[test]
    fn arena_variants_agree_on_representable_rows() {
        // One-hot rows (the task-feature case) are exactly representable, so both
        // variants decode identically.
        let data = vec![0.0, 1.0, 0.0, 1.0, 1.0, 0.0];
        let f32a = FeatureArena::from_f32(data.clone(), false);
        let f16a = FeatureArena::from_f32(data.clone(), true);
        assert!(!f32a.is_compact());
        assert!(f16a.is_compact());
        assert_eq!(f32a.n_rows(3), 2);
        assert_eq!(f16a.n_rows(3), 2);
        assert_eq!(f16a.bytes() * 2, f32a.bytes());
        let mut out = Vec::new();
        for row in 0..2 {
            f16a.decode_row_into(row, 3, &mut out);
            assert_eq!(out.as_slice(), f32a.row_f32(row, 3).unwrap());
        }
        assert!(f16a.row_f32(0, 3).is_none());
    }

    #[test]
    fn writes_quantise_in_the_compact_variant() {
        let mut arena = FeatureArena::from_f32(vec![0.0; 4], true);
        let row = [0.1, 0.2, 0.3, 0.4];
        arena.write_row(0, 4, &row);
        let mut out = Vec::new();
        arena.decode_row_into(0, 4, &mut out);
        for (decoded, original) in out.iter().zip(&row) {
            assert_eq!(decoded.to_bits(), f16_round_trip(*original).to_bits());
        }
    }

    #[test]
    fn arena_checkpoint_round_trips_and_rejects_precision_mismatch() {
        let data = vec![0.25, 0.5, 0.75, 1.0];
        for compact in [false, true] {
            let arena = FeatureArena::from_f32(data.clone(), compact);
            let mut w = crowd_ckpt::StateWriter::new();
            arena.save_into(&mut w);
            let bytes = w.into_bytes();
            let mut r = crowd_ckpt::StateReader::new(&bytes);
            let restored = FeatureArena::load_from(&mut r, compact).unwrap();
            assert_eq!(restored, arena);
            // The opposite precision must refuse the snapshot, not reinterpret it.
            let mut r = crowd_ckpt::StateReader::new(&bytes);
            assert!(FeatureArena::load_from(&mut r, !compact).is_err());
        }
    }
}
