//! The worker behaviour model: latent utility plus cascade browsing.
//!
//! The paper assumes (Sec. III and VII-B1) that a worker scans a recommended list top-down
//! (cascade model, Craswell et al.) and completes the first task s/he finds interesting; the
//! rest of the shown tasks count as skipped. "Interesting" is modelled here with a latent
//! utility combining the worker's category/domain affinities, award sensitivity and noise —
//! the ground truth that policies must discover from observed completions only.

use crate::task::Task;
use crate::worker::Worker;
use crowd_tensor::Rng;

/// Ground-truth behaviour model shared by the whole simulation.
#[derive(Debug, Clone)]
pub struct BehaviorModel {
    /// Award normalisation constant (the award that counts as "1.0" utility for a fully
    /// payment-driven worker).
    pub award_scale: f32,
    /// Standard deviation of the per-decision utility noise.
    pub noise_std: f32,
}

impl Default for BehaviorModel {
    fn default() -> Self {
        BehaviorModel {
            award_scale: 100.0,
            noise_std: 0.15,
        }
    }
}

impl BehaviorModel {
    /// Deterministic part of the worker's utility for a task.
    pub fn base_utility(&self, worker: &Worker, task: &Task) -> f32 {
        let cat = worker
            .category_affinity
            .get(task.category as usize)
            .copied()
            .unwrap_or(0.0);
        let dom = worker
            .domain_affinity
            .get(task.domain as usize)
            .copied()
            .unwrap_or(0.0);
        let award = (task.award / self.award_scale).min(2.0);
        // Category is the dominant motive, domain secondary, award weighted by the worker's
        // payment sensitivity (Kaufmann et al.'s top-3 motivations, Sec. IV-A1).
        0.55 * cat + 0.25 * dom + worker.award_sensitivity * award
    }

    /// Noisy interest decision for a single task.
    pub fn is_interested(&self, worker: &Worker, task: &Task, rng: &mut Rng) -> bool {
        let u = self.base_utility(worker, task) + rng.normal(0.0, self.noise_std);
        u > worker.interest_threshold
    }

    /// Cascade browse: the worker scans `shown` in order (up to the attention budget) and
    /// returns the position of the first task s/he completes, or `None` if none is completed.
    pub fn browse<'a>(
        &self,
        worker: &Worker,
        shown: impl IntoIterator<Item = &'a Task>,
        rng: &mut Rng,
    ) -> Option<usize> {
        for (position, task) in shown.into_iter().enumerate() {
            if position >= worker.attention_budget {
                return None;
            }
            if self.is_interested(worker, task, rng) {
                return Some(position);
            }
        }
        None
    }

    /// Probability that the worker is interested in the task, marginalising over the decision
    /// noise (used by tests and by oracle diagnostics, never by policies).
    pub fn interest_probability(&self, worker: &Worker, task: &Task) -> f32 {
        // P(base + N(0, sigma) > threshold) = Phi((base - threshold) / sigma).
        let z = (self.base_utility(worker, task) - worker.interest_threshold) / self.noise_std;
        normal_cdf(z)
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
fn normal_cdf(z: f32) -> f32 {
    let t = 1.0 / (1.0 + 0.2316419 * z.abs());
    let d = 0.398_942_3 * (-z * z / 2.0).exp();
    let poly = t
        * (0.319_381_53
            + t * (-0.356_563_78 + t * (1.781_477_9 + t * (-1.821_255_9 + t * 1.330_274_5))));
    let p = 1.0 - d * poly;
    if z >= 0.0 {
        p
    } else {
        1.0 - p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;
    use crate::worker::WorkerId;

    fn worker(cat_affinity: Vec<f32>, threshold: f32, budget: usize) -> Worker {
        Worker {
            id: WorkerId(0),
            quality: 0.5,
            category_affinity: cat_affinity,
            domain_affinity: vec![0.5, 0.5],
            award_sensitivity: 0.2,
            interest_threshold: threshold,
            attention_budget: budget,
            activity: 1.0,
        }
    }

    fn task(category: u16, award: f32) -> Task {
        Task {
            id: TaskId(0),
            requester: 0,
            category,
            domain: 0,
            award,
            created_at: 0,
            deadline: 1000,
        }
    }

    #[test]
    fn utility_prefers_liked_categories() {
        let model = BehaviorModel::default();
        let w = worker(vec![1.0, 0.0], 0.5, 10);
        assert!(model.base_utility(&w, &task(0, 50.0)) > model.base_utility(&w, &task(1, 50.0)));
    }

    #[test]
    fn utility_grows_with_award() {
        let model = BehaviorModel::default();
        let w = worker(vec![0.5, 0.5], 0.5, 10);
        assert!(model.base_utility(&w, &task(0, 150.0)) > model.base_utility(&w, &task(0, 10.0)));
    }

    #[test]
    fn interest_probability_matches_empirical_rate() {
        let model = BehaviorModel::default();
        let w = worker(vec![0.8, 0.0], 0.55, 10);
        let t = task(0, 60.0);
        let p = model.interest_probability(&w, &t);
        let mut rng = Rng::seed_from(0);
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| model.is_interested(&w, &t, &mut rng))
            .count();
        let empirical = hits as f32 / n as f32;
        assert!(
            (p - empirical).abs() < 0.02,
            "analytic {p} empirical {empirical}"
        );
    }

    #[test]
    fn cascade_returns_first_interesting_position() {
        let model = BehaviorModel {
            award_scale: 100.0,
            noise_std: 1e-6, // effectively deterministic
        };
        let w = worker(vec![1.0, 0.0], 0.5, 10);
        let boring = task(1, 0.0);
        let interesting = task(0, 80.0);
        let shown = [boring.clone(), boring.clone(), interesting, boring];
        let mut rng = Rng::seed_from(1);
        assert_eq!(model.browse(&w, shown.iter(), &mut rng), Some(2));
    }

    #[test]
    fn cascade_respects_attention_budget() {
        let model = BehaviorModel {
            award_scale: 100.0,
            noise_std: 1e-6,
        };
        let w = worker(vec![1.0, 0.0], 0.5, 2);
        let boring = task(1, 0.0);
        let interesting = task(0, 80.0);
        // The interesting task sits past the attention budget, so it is never reached.
        let shown = [boring.clone(), boring, interesting];
        let mut rng = Rng::seed_from(2);
        assert_eq!(model.browse(&w, shown.iter(), &mut rng), None);
    }

    #[test]
    fn cascade_handles_empty_list() {
        let model = BehaviorModel::default();
        let w = worker(vec![1.0], 0.5, 5);
        let mut rng = Rng::seed_from(3);
        assert_eq!(model.browse(&w, [].iter(), &mut rng), None);
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-3);
        assert!(normal_cdf(3.0) > 0.99);
        assert!(normal_cdf(-3.0) < 0.01);
        assert!((normal_cdf(1.0) - 0.8413).abs() < 2e-3);
    }
}
