//! The immutable synthetic dataset: tasks, workers and the event timeline.

use crate::event::Event;
use crate::task::Task;
use crate::worker::Worker;

/// Minutes in a simulated day.
pub const MINUTES_PER_DAY: u64 = 1440;
/// Minutes in a simulated (30-day) month.
pub const MINUTES_PER_MONTH: u64 = 30 * MINUTES_PER_DAY;

/// A complete simulated dataset, analogous to the paper's crawled CrowdSpring data: the task
/// table, the worker table and the time-ordered event stream over the whole horizon.
///
/// A dataset is what environments replay *and* what non-stationary scenarios transform:
/// [`crate::dynamics::ScenarioSpec::apply`] compiles worker churn, demand surges and
/// task-mix drift into a new `Dataset` before replay, so every downstream consumer —
/// [`crate::Platform`], [`crate::ShardedEnv`], checkpoints — handles scenario runs
/// without knowing scenarios exist (see `docs/SCENARIOS.md`).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// All tasks ever created, indexed by [`crate::TaskId`].
    pub tasks: Vec<Task>,
    /// All workers, indexed by [`crate::WorkerId`].
    pub workers: Vec<Worker>,
    /// Time-ordered events (task creations, expirations, worker arrivals).
    pub events: Vec<Event>,
    /// Number of task categories used when generating features.
    pub n_categories: usize,
    /// Number of task domains used when generating features.
    pub n_domains: usize,
    /// Exponent `p` of the Dixit–Stiglitz quality aggregation (Eq. 5).
    pub quality_exponent: f32,
    /// Number of simulated months (including the initialisation month).
    pub months: usize,
}

impl Dataset {
    /// Month index (0-based) of a timestamp.
    pub fn month_of(time: u64) -> usize {
        (time / MINUTES_PER_MONTH) as usize
    }

    /// Day index (0-based) of a timestamp.
    pub fn day_of(time: u64) -> usize {
        (time / MINUTES_PER_DAY) as usize
    }

    /// Total horizon length in minutes.
    pub fn horizon(&self) -> u64 {
        self.months as u64 * MINUTES_PER_MONTH
    }

    /// Number of worker-arrival events.
    pub fn n_arrivals(&self) -> usize {
        self.events.iter().filter(|e| e.is_arrival()).count()
    }

    /// Number of worker-arrival events after the initialisation month (the ones that are
    /// actually evaluated, mirroring the paper's Feb–Jan evaluation window).
    pub fn n_evaluated_arrivals(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.is_arrival() && Self::month_of(e.time) >= 1)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::worker::WorkerId;

    #[test]
    fn month_and_day_boundaries() {
        assert_eq!(Dataset::month_of(0), 0);
        assert_eq!(Dataset::month_of(MINUTES_PER_MONTH - 1), 0);
        assert_eq!(Dataset::month_of(MINUTES_PER_MONTH), 1);
        assert_eq!(Dataset::day_of(MINUTES_PER_DAY * 3 + 5), 3);
    }

    #[test]
    fn arrival_counters() {
        let ds = Dataset {
            tasks: vec![],
            workers: vec![],
            events: vec![
                Event {
                    time: 10,
                    kind: EventKind::WorkerArrival(WorkerId(0)),
                },
                Event {
                    time: MINUTES_PER_MONTH + 1,
                    kind: EventKind::WorkerArrival(WorkerId(0)),
                },
            ],
            n_categories: 3,
            n_domains: 2,
            quality_exponent: 2.0,
            months: 2,
        };
        assert_eq!(ds.n_arrivals(), 2);
        assert_eq!(ds.n_evaluated_arrivals(), 1);
        assert_eq!(ds.horizon(), 2 * MINUTES_PER_MONTH);
    }
}
