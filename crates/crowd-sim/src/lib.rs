//! Crowdsourcing platform simulator.
//!
//! The paper evaluates on a crawled CrowdSpring dataset that is not public, and — like the
//! paper's own offline replay — needs a behavioural assumption about which task an arriving
//! worker completes. This crate provides the full substrate:
//!
//! * entity types ([`Task`], [`Worker`]) and the time-ordered event stream of task creations,
//!   task expirations and worker arrivals ([`Event`]);
//! * feature construction exactly as Sec. IV-A describes (one-hot category ⊕ one-hot domain ⊕
//!   discretised award for tasks; decayed distribution of recently completed task features
//!   for workers) in [`features`];
//! * the cascade browsing / latent-utility behaviour model in [`behavior`];
//! * Dixit–Stiglitz task quality (Eq. 5) in [`quality`];
//! * a synthetic CrowdSpring-replica generator calibrated to the statistics the paper reports
//!   (Fig. 5/6) in [`generator`], plus the resampling and quality-perturbation knobs used by
//!   the synthetic experiments (Fig. 10);
//! * non-stationary scenario dynamics in [`dynamics`]: a [`ScenarioSpec`] compiles worker
//!   churn / availability windows, demand surges with a day/night cycle, and task-mix drift
//!   into a perturbed dataset *before* the replay, so every environment replays scenarios
//!   through the unchanged zero-copy hot loop;
//! * the zero-copy environment layer in [`mod@env`]: the [`Env`] trait, borrowed
//!   [`ArrivalView`] / [`FeedbackView`] / [`TaskRef`] views into platform storage, and the
//!   reusable [`Decision`] buffer — the hot decision loop performs no per-arrival clones;
//! * the [`Platform`] environment that replays the event stream over flat
//!   struct-of-arrays state (task-feature arena, worker-feature arena, quality arrays)
//!   and implements [`Env`];
//! * the [`Policy`] trait implemented by the DDQN agent (`crowd-rl-core`) and all baselines
//!   (`crowd-baselines`);
//! * dataset statistics used to regenerate Fig. 5 and Fig. 6 in [`stats`].
//!
//! How this crate's `Env`/`Policy` layer composes with the `Session` replay facade and the
//! batched-inference path above it is mapped end to end in `ARCHITECTURE.md` at the
//! repository root.
//!
//! The canonical interaction loop:
//!
//! ```
//! use crowd_sim::{Decision, Env, Platform, SimConfig};
//!
//! let dataset = SimConfig::tiny().generate();
//! let features = Platform::default_feature_space(&dataset);
//! let mut platform = Platform::new(dataset, features, 7);
//! let mut decision = Decision::new();
//! let mut completions = 0;
//! while platform.next_arrival() {
//!     let view = platform.arrival();
//!     if view.is_empty() {
//!         continue;
//!     }
//!     // A trivial policy: show the whole pool in order. Real policies implement
//!     // `crowd_sim::Policy` and write their ranking into the decision buffer.
//!     decision.clear();
//!     decision.extend((0..view.n_tasks()).map(|i| view.task_id(i)));
//!     platform.apply(&decision);
//!     if platform.feedback().completed.is_some() {
//!         completions += 1;
//!     }
//! }
//! assert!(completions > 0);
//! ```

pub mod arrival;
pub mod behavior;
pub mod compact;
pub mod dataset;
pub mod dynamics;
pub mod env;
pub mod event;
pub mod features;
pub mod generator;
pub mod platform;
pub mod policy;
pub mod quality;
pub mod sharded;
pub mod stats;
pub mod task;
pub mod worker;

pub use arrival::GapDistribution;
pub use behavior::BehaviorModel;
pub use compact::{f16_bits_to_f32, f16_round_trip, f32_to_f16_bits, FeatureArena};
pub use dataset::{Dataset, MINUTES_PER_DAY, MINUTES_PER_MONTH};
pub use dynamics::{AvailabilityWindow, DayNightCycle, DriftEpoch, ScenarioSpec, SurgePhase};
pub use env::{ArrivalView, Decision, Env, FeedbackView, TaskRef};
pub use event::{Event, EventKind};
pub use features::FeatureSpace;
pub use generator::{perturb_worker_qualities, resample_arrivals, SimConfig};
pub use platform::{Arrival, Platform};
pub use policy::{
    Action, ArrivalContext, BatchedPolicy, BoxedBatchedPolicy, BoxedPolicy, LearnerBranchTiming,
    LearnerTiming, Policy, PolicyFeedback, TaskSnapshot,
};
pub use quality::{dixit_stiglitz, quality_gain};
pub use sharded::{ShardSpec, ShardedEnv};
pub use stats::{
    consecutive_arrival_gap_histogram, monthly_stats, same_worker_gap_histogram, GapHistogram,
    MonthStats,
};
pub use task::{Task, TaskId};
pub use worker::{Worker, WorkerId};
