//! Proportional prioritized experience replay (Schaul et al., 2015 — the paper's \[25\]).
//!
//! Transition `i` is sampled with probability `p_i^α / Σ p_j^α` where `p_i = |δ_i| + ε` is its
//! last absolute TD error. Sampling returns importance-sampling weights
//! `w_i = (N · P(i))^{-β} / max_j w_j` so the gradient stays unbiased as β anneals to 1.

use crate::sum_tree::SumTree;
use crowd_tensor::Rng;

/// One sampled transition: its slot, a reference-by-index into the buffer, and its
/// importance-sampling weight.
#[derive(Debug, Clone, PartialEq)]
pub struct PrioritizedSample {
    /// Slot in the buffer; pass back to [`PrioritizedReplay::update_priority`].
    pub index: usize,
    /// Importance-sampling weight, already normalised to max 1.
    pub weight: f32,
}

/// Ring-buffer prioritized replay memory.
#[derive(Debug, Clone)]
pub struct PrioritizedReplay<T> {
    capacity: usize,
    items: Vec<Option<T>>,
    tree: SumTree,
    next_slot: usize,
    len: usize,
    alpha: f64,
    beta: f64,
    beta_increment: f64,
    epsilon: f64,
    max_priority: f64,
}

impl<T> PrioritizedReplay<T> {
    /// Creates a buffer with the given capacity and the standard α=0.6, β=0.4→1.0 schedule.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        PrioritizedReplay {
            capacity,
            items: std::iter::repeat_with(|| None).take(capacity).collect(),
            tree: SumTree::new(capacity),
            next_slot: 0,
            len: 0,
            alpha: 0.6,
            beta: 0.4,
            beta_increment: 1e-4,
            epsilon: 1e-3,
            max_priority: 1.0,
        }
    }

    /// Overrides the priority exponent α (0 = uniform, 1 = fully proportional).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha.max(0.0);
        self
    }

    /// Overrides the initial β and its per-sample increment.
    pub fn with_beta(mut self, beta: f64, increment: f64) -> Self {
        self.beta = beta.clamp(0.0, 1.0);
        self.beta_increment = increment.max(0.0);
        self
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of stored transitions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current annealed β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Inserts a transition with maximal priority so it is sampled at least once soon.
    pub fn push(&mut self, item: T) {
        let slot = self.next_slot;
        self.items[slot] = Some(item);
        self.tree.set(slot, self.max_priority.powf(self.alpha));
        self.next_slot = (self.next_slot + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
    }

    /// Immutable access to the transition stored in `slot`.
    pub fn get(&self, slot: usize) -> Option<&T> {
        self.items.get(slot).and_then(|o| o.as_ref())
    }

    /// Samples `batch` slots proportionally to priority, annealing β. Returns an empty vector
    /// when the buffer is empty.
    pub fn sample(&mut self, batch: usize, rng: &mut Rng) -> Vec<PrioritizedSample> {
        if self.len == 0 || batch == 0 {
            return Vec::new();
        }
        self.beta = (self.beta + self.beta_increment).min(1.0);
        let total = self.tree.total();
        if total <= 0.0 {
            // All priorities zero (should not happen because pushes use max priority); fall
            // back to uniform sampling over stored items.
            return (0..batch)
                .map(|_| PrioritizedSample {
                    index: rng.below(self.len),
                    weight: 1.0,
                })
                .collect();
        }
        let n = self.len as f64;
        let min_p = self.tree.min_priority(self.capacity).unwrap_or(1.0) / total;
        let max_weight = (n * min_p).powf(-self.beta);
        let mut out = Vec::with_capacity(batch);
        for _ in 0..batch {
            let prefix = rng.unit() as f64 * total;
            let index = self.tree.find_prefix(prefix);
            // Guard against selecting an empty slot (possible only before the buffer wraps,
            // when the tree still has zero-priority leaves past `len`).
            let index = if self.items[index].is_some() {
                index
            } else {
                rng.below(self.len)
            };
            let p = (self.tree.get(index) / total).max(1e-12);
            let weight = ((n * p).powf(-self.beta) / max_weight) as f32;
            out.push(PrioritizedSample {
                index,
                weight: weight.min(1.0),
            });
        }
        out
    }

    /// Samples `batch` slots like [`PrioritizedReplay::sample`], but pairs every sample
    /// with a *borrow* of the stored transition, so callers that only read the sampled
    /// items (the DQN learner assembling one packed minibatch) need not clone them out of
    /// the buffer. The borrows hold the buffer until dropped; re-prioritise afterwards via
    /// [`PrioritizedReplay::update_priority`] with the returned slot indices.
    pub fn sample_refs(&mut self, batch: usize, rng: &mut Rng) -> Vec<(PrioritizedSample, &T)> {
        let samples = self.sample(batch, rng);
        samples
            .into_iter()
            .map(|sample| {
                let item = self.items[sample.index]
                    .as_ref()
                    .expect("sampled slot must be occupied");
                (sample, item)
            })
            .collect()
    }

    /// Current priority mass of `slot` as stored in the sum tree (`p^α`; 0.0 for empty
    /// slots). Exposed so equivalence tests can compare two buffers' sampling state
    /// bit for bit.
    pub fn priority(&self, slot: usize) -> f64 {
        self.tree.get(slot)
    }

    /// Updates the priority of `slot` from a new absolute TD error.
    pub fn update_priority(&mut self, slot: usize, td_error: f32) {
        let p = (td_error.abs() as f64 + self.epsilon).min(1e4);
        self.max_priority = self.max_priority.max(p);
        self.tree.set(slot, p.powf(self.alpha));
    }
}

/// Checkpoint format: capacity (`u64`, validated), ring-cursor state (`next_slot`,
/// `len`), the α/β annealing state and ε/max-priority (f64 raw bits), the embedded
/// [`SumTree`] (full node array — see its impl for why), then one `Option<T>` per slot
/// in slot order. β is live state, not configuration: it anneals per sample, and the
/// importance-sampling weights of the next minibatch depend on its exact value.
impl<T: crowd_ckpt::SaveState> crowd_ckpt::SaveState for PrioritizedReplay<T> {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.put_usize(self.capacity);
        w.put_usize(self.next_slot);
        w.put_usize(self.len);
        w.put_f64(self.alpha);
        w.put_f64(self.beta);
        w.put_f64(self.beta_increment);
        w.put_f64(self.epsilon);
        w.put_f64(self.max_priority);
        w.save(&self.tree);
        for slot in &self.items {
            match slot {
                None => w.put_bool(false),
                Some(item) => {
                    w.put_bool(true);
                    item.save_state(w);
                }
            }
        }
    }
}

impl<T: crowd_ckpt::DecodeState> crowd_ckpt::LoadState for PrioritizedReplay<T> {
    fn load_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        let capacity = r.take_usize()?;
        if capacity != self.capacity {
            return Err(crowd_ckpt::CkptError::Corrupt {
                what: "prioritized replay",
                detail: format!(
                    "snapshot capacity {capacity} does not match live capacity {}",
                    self.capacity
                ),
            });
        }
        let next_slot = r.take_usize()?;
        let len = r.take_usize()?;
        if next_slot >= capacity || len > capacity {
            return Err(crowd_ckpt::CkptError::Corrupt {
                what: "prioritized replay",
                detail: format!("cursor {next_slot}/len {len} out of range for {capacity}"),
            });
        }
        self.next_slot = next_slot;
        self.len = len;
        self.alpha = r.take_f64()?;
        self.beta = r.take_f64()?;
        self.beta_increment = r.take_f64()?;
        self.epsilon = r.take_f64()?;
        self.max_priority = r.take_f64()?;
        crowd_ckpt::LoadState::load_state(&mut self.tree, r)?;
        for slot in &mut self.items {
            *slot = if r.take_bool()? {
                Some(T::decode_state(r)?)
            } else {
                None
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpointed_buffer_samples_identically_to_the_original() {
        use crowd_ckpt::{LoadState, SaveState, StateReader, StateWriter};
        // Build a buffer with churn (wraps, priority updates, partially annealed β)…
        let mut buf = PrioritizedReplay::new(8);
        let mut rng = Rng::seed_from(53);
        for i in 0..11u32 {
            buf.push(i);
        }
        for slot in 0..8 {
            buf.update_priority(slot, 0.1 + slot as f32);
        }
        buf.sample(16, &mut rng); // anneal β a little
        let rng_snapshot = rng.clone();

        let mut w = StateWriter::new();
        buf.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored: PrioritizedReplay<u32> = PrioritizedReplay::new(8);
        restored.load_state(&mut StateReader::new(&bytes)).unwrap();

        // …and require the restored buffer to make the exact same draws with the exact
        // same weights from an identical RNG state.
        let mut rng_b = rng_snapshot;
        let a = buf.sample(32, &mut rng);
        let b = restored.sample(32, &mut rng_b);
        assert_eq!(a, b);
        assert_eq!(buf.beta().to_bits(), restored.beta().to_bits());
        for slot in 0..8 {
            assert_eq!(
                buf.priority(slot).to_bits(),
                restored.priority(slot).to_bits()
            );
            assert_eq!(buf.get(slot), restored.get(slot));
        }
        // Ring cursor survives: the next push overwrites the same slot.
        buf.push(99);
        restored.push(99);
        for slot in 0..8 {
            assert_eq!(buf.get(slot), restored.get(slot));
        }
    }

    #[test]
    fn prioritized_capacity_and_cursor_are_validated() {
        use crowd_ckpt::{LoadState, SaveState, StateReader, StateWriter};
        let mut buf = PrioritizedReplay::new(4);
        buf.push(1u32);
        let mut w = StateWriter::new();
        buf.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut wrong: PrioritizedReplay<u32> = PrioritizedReplay::new(8);
        assert!(wrong.load_state(&mut StateReader::new(&bytes)).is_err());
    }

    #[test]
    fn push_and_len_wraps() {
        let mut buf = PrioritizedReplay::new(4);
        for i in 0..6 {
            buf.push(i);
        }
        assert_eq!(buf.len(), 4);
        // Oldest two were overwritten: slots contain 4, 5, 2, 3.
        assert_eq!(buf.get(0), Some(&4));
        assert_eq!(buf.get(1), Some(&5));
        assert_eq!(buf.get(2), Some(&2));
        assert_eq!(buf.get(3), Some(&3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _: PrioritizedReplay<u8> = PrioritizedReplay::new(0);
    }

    #[test]
    fn empty_sample_is_empty() {
        let mut buf: PrioritizedReplay<u8> = PrioritizedReplay::new(4);
        let mut rng = Rng::seed_from(0);
        assert!(buf.sample(8, &mut rng).is_empty());
    }

    #[test]
    fn high_priority_items_are_sampled_more() {
        let mut buf = PrioritizedReplay::new(8).with_alpha(1.0);
        for i in 0..8 {
            buf.push(i);
        }
        // Give slot 3 a huge TD error, everything else tiny.
        for slot in 0..8 {
            buf.update_priority(slot, if slot == 3 { 10.0 } else { 0.01 });
        }
        let mut rng = Rng::seed_from(1);
        let mut count3 = 0;
        let total = 4000;
        for s in buf.sample(total, &mut rng) {
            if s.index == 3 {
                count3 += 1;
            }
        }
        assert!(
            count3 > total / 2,
            "slot 3 sampled only {count3}/{total} times"
        );
    }

    #[test]
    fn weights_are_normalised_and_smaller_for_likelier_items() {
        let mut buf = PrioritizedReplay::new(4)
            .with_alpha(1.0)
            .with_beta(1.0, 0.0);
        for i in 0..4 {
            buf.push(i);
        }
        buf.update_priority(0, 10.0);
        buf.update_priority(1, 0.1);
        buf.update_priority(2, 0.1);
        buf.update_priority(3, 0.1);
        let mut rng = Rng::seed_from(2);
        let samples = buf.sample(200, &mut rng);
        assert!(samples
            .iter()
            .all(|s| s.weight <= 1.0 + 1e-6 && s.weight > 0.0));
        let w_high = samples.iter().find(|s| s.index == 0).map(|s| s.weight);
        let w_low = samples.iter().find(|s| s.index != 0).map(|s| s.weight);
        if let (Some(h), Some(l)) = (w_high, w_low) {
            assert!(
                h < l,
                "high-priority weight {h} should be below low-priority {l}"
            );
        }
    }

    #[test]
    fn sample_refs_matches_sample_and_borrows_items() {
        // Same RNG state, same draws: sample_refs must return the same slots and weights
        // as sample, with each slot's stored item attached by reference.
        let mut by_value = PrioritizedReplay::new(8);
        let mut by_ref = PrioritizedReplay::new(8);
        for i in 0..6 {
            by_value.push(i * 10);
            by_ref.push(i * 10);
        }
        by_value.update_priority(2, 5.0);
        by_ref.update_priority(2, 5.0);
        let mut rng_a = Rng::seed_from(9);
        let mut rng_b = Rng::seed_from(9);
        let plain = by_value.sample(5, &mut rng_a);
        let with_refs = by_ref.sample_refs(5, &mut rng_b);
        assert_eq!(plain.len(), with_refs.len());
        for (p, (s, item)) in plain.iter().zip(&with_refs) {
            assert_eq!(p, s);
            assert_eq!(Some(*item), by_value.get(p.index));
        }
    }

    #[test]
    fn priority_reflects_updates_and_empty_slots() {
        let mut buf = PrioritizedReplay::new(4).with_alpha(1.0);
        buf.push(1);
        buf.push(2);
        buf.update_priority(0, 3.0);
        assert!((buf.priority(0) - (3.0f64 + 1e-3)).abs() < 1e-9);
        // Slot 2 was never pushed: zero mass.
        assert_eq!(buf.priority(2), 0.0);
    }

    #[test]
    fn beta_anneals_towards_one() {
        let mut buf = PrioritizedReplay::new(4).with_beta(0.4, 0.1);
        buf.push(0);
        let mut rng = Rng::seed_from(3);
        for _ in 0..10 {
            buf.sample(1, &mut rng);
        }
        assert!((buf.beta() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_buffer_never_returns_empty_slots() {
        let mut buf = PrioritizedReplay::new(16);
        buf.push(42);
        buf.push(43);
        let mut rng = Rng::seed_from(4);
        for s in buf.sample(64, &mut rng) {
            assert!(buf.get(s.index).is_some());
        }
    }
}
