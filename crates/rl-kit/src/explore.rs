//! Exploration strategies (paper Sec. VI-B).
//!
//! * [`EpsilonGreedy`] for single-task assignment: with probability ε the agent follows the
//!   Q values, otherwise it picks a random task. The paper's schedule increases ε (the
//!   *exploit* probability) from 0.9 to 0.98.
//! * [`GaussianQNoise`] for list recommendation: instead of fully random ordering, zero-mean
//!   Gaussian noise with the std of the current Q values (times a decaying factor) is added
//!   to every Q value before ranking.

use crate::schedule::Schedule;
use crowd_tensor::Rng;

/// ε-greedy action selection over a slice of Q values.
#[derive(Debug, Clone)]
pub struct EpsilonGreedy {
    /// Schedule of the probability of *following* the greedy policy.
    exploit_schedule: Schedule,
    step: u64,
}

impl EpsilonGreedy {
    /// Creates an explorer whose exploit probability follows `exploit_schedule`.
    pub fn new(exploit_schedule: Schedule) -> Self {
        EpsilonGreedy {
            exploit_schedule,
            step: 0,
        }
    }

    /// The paper's single-task schedule: exploit probability grows linearly 0.9 → 0.98.
    pub fn paper_default(anneal_steps: u64) -> Self {
        EpsilonGreedy::new(Schedule::Linear {
            start: 0.9,
            end: 0.98,
            steps: anneal_steps,
        })
    }

    /// Current exploit probability.
    pub fn exploit_probability(&self) -> f32 {
        self.exploit_schedule.at(self.step)
    }

    /// Number of decisions taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Picks an index among `q_values`: greedy with the scheduled probability, uniform
    /// otherwise. Returns `None` on an empty slice. Advances the schedule by one step.
    pub fn select(&mut self, q_values: &[f32], rng: &mut Rng) -> Option<usize> {
        if q_values.is_empty() {
            return None;
        }
        let exploit = rng.chance(self.exploit_probability());
        self.step += 1;
        if exploit {
            let mut best = 0;
            for (i, &q) in q_values.iter().enumerate() {
                if q > q_values[best] {
                    best = i;
                }
            }
            Some(best)
        } else {
            Some(rng.below(q_values.len()))
        }
    }
}

/// Gaussian-noise exploration over Q values for list ranking.
#[derive(Debug, Clone)]
pub struct GaussianQNoise {
    /// Probability of injecting noise at all (the paper keeps this at 0.9).
    noise_probability: f32,
    /// Decay factor applied to the noise std, from 1.0 down to 0.1 in the paper.
    decay_schedule: Schedule,
    step: u64,
}

impl GaussianQNoise {
    /// Creates a noise explorer.
    pub fn new(noise_probability: f32, decay_schedule: Schedule) -> Self {
        GaussianQNoise {
            noise_probability,
            decay_schedule,
            step: 0,
        }
    }

    /// The paper's list-recommendation configuration: noise probability 0.9, decay factor
    /// 1.0 → 0.1 over `anneal_steps` decisions.
    pub fn paper_default(anneal_steps: u64) -> Self {
        GaussianQNoise::new(
            0.9,
            Schedule::Linear {
                start: 1.0,
                end: 0.1,
                steps: anneal_steps,
            },
        )
    }

    /// Current decay factor.
    pub fn decay_factor(&self) -> f32 {
        self.decay_schedule.at(self.step)
    }

    /// Returns (possibly) noise-perturbed copies of the Q values and advances the schedule.
    ///
    /// With probability `noise_probability`, each Q value receives `N(0, σ·decay)` noise where
    /// σ is the standard deviation of the current Q values; otherwise the values are returned
    /// unchanged.
    pub fn perturb(&mut self, q_values: &[f32], rng: &mut Rng) -> Vec<f32> {
        let decay = self.decay_factor();
        self.step += 1;
        if q_values.is_empty() || !rng.chance(self.noise_probability) {
            return q_values.to_vec();
        }
        let mean = q_values.iter().sum::<f32>() / q_values.len() as f32;
        let var = q_values.iter().map(|q| (q - mean).powi(2)).sum::<f32>() / q_values.len() as f32;
        let std = var.sqrt();
        if std <= f32::EPSILON {
            return q_values.to_vec();
        }
        q_values
            .iter()
            .map(|&q| q + rng.normal(0.0, std * decay))
            .collect()
    }

    /// Ranks task indices by (possibly perturbed) Q values, descending.
    pub fn rank(&mut self, q_values: &[f32], rng: &mut Rng) -> Vec<usize> {
        let perturbed = self.perturb(q_values, rng);
        let mut order: Vec<usize> = (0..perturbed.len()).collect();
        order.sort_by(|&a, &b| {
            perturbed[b]
                .partial_cmp(&perturbed[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order
    }
}

/// Checkpoint format: the exploit schedule, then the step counter (`u64`) — the
/// annealing position that determines every future exploit probability. The schedule is
/// **validation data**: loading a snapshot into an explorer configured with a different
/// schedule is config drift and fails with a typed error (the same policy every other
/// component applies — parameter names/shapes, buffer capacities, histogram supports).
impl crowd_ckpt::SaveState for EpsilonGreedy {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.save(&self.exploit_schedule);
        w.put_u64(self.step);
    }
}

impl crowd_ckpt::LoadState for EpsilonGreedy {
    fn load_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        let schedule: Schedule = r.decode()?;
        if schedule != self.exploit_schedule {
            return Err(crowd_ckpt::CkptError::Corrupt {
                what: "epsilon-greedy explorer",
                detail: format!(
                    "snapshot exploit schedule {schedule:?} does not match the configured {:?}",
                    self.exploit_schedule
                ),
            });
        }
        self.step = r.take_u64()?;
        Ok(())
    }
}

/// Checkpoint format: noise probability (f32 raw bits), decay schedule, step counter.
/// Probability and schedule are validation data (see [`EpsilonGreedy`]'s impl).
impl crowd_ckpt::SaveState for GaussianQNoise {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.put_f32(self.noise_probability);
        w.save(&self.decay_schedule);
        w.put_u64(self.step);
    }
}

impl crowd_ckpt::LoadState for GaussianQNoise {
    fn load_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        let noise_probability = r.take_f32()?;
        let schedule: Schedule = r.decode()?;
        if noise_probability.to_bits() != self.noise_probability.to_bits()
            || schedule != self.decay_schedule
        {
            return Err(crowd_ckpt::CkptError::Corrupt {
                what: "gaussian-noise explorer",
                detail: format!(
                    "snapshot configuration (p={noise_probability}, {schedule:?}) does not match the live (p={}, {:?})",
                    self.noise_probability, self.decay_schedule
                ),
            });
        }
        self.step = r.take_u64()?;
        Ok(())
    }
}

/// Ranks indices by Q value descending without any exploration (pure exploitation).
pub fn greedy_rank(q_values: &[f32]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..q_values.len()).collect();
    order.sort_by(|&a, &b| {
        q_values[b]
            .partial_cmp(&q_values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpointed_explorers_resume_their_schedules() {
        use crowd_ckpt::{LoadState, SaveState, StateReader, StateWriter};
        let mut eps = EpsilonGreedy::paper_default(100);
        let mut noise = GaussianQNoise::paper_default(100);
        let mut rng = Rng::seed_from(61);
        for _ in 0..37 {
            eps.select(&[1.0, 2.0], &mut rng);
            noise.rank(&[0.3, 0.1, 0.2], &mut rng);
        }
        let mut w = StateWriter::new();
        eps.save_state(&mut w);
        noise.save_state(&mut w);
        let bytes = w.into_bytes();
        // A differently configured target is config drift → typed error.
        let mut drifted = EpsilonGreedy::paper_default(1);
        assert!(drifted.load_state(&mut StateReader::new(&bytes)).is_err());
        // Matching configuration restores the schedule position.
        let mut r = StateReader::new(&bytes);
        let mut eps_b = EpsilonGreedy::paper_default(100);
        let mut noise_b = GaussianQNoise::paper_default(100);
        eps_b.load_state(&mut r).unwrap();
        noise_b.load_state(&mut r).unwrap();
        r.finish("explorers").unwrap();
        assert_eq!(eps_b.steps(), 37);
        assert_eq!(
            eps.exploit_probability().to_bits(),
            eps_b.exploit_probability().to_bits()
        );
        assert_eq!(
            noise.decay_factor().to_bits(),
            noise_b.decay_factor().to_bits()
        );
        // Identical RNG states → identical future decisions.
        let mut rng_b = rng.clone();
        for _ in 0..20 {
            assert_eq!(
                eps.select(&[0.5, 0.9, 0.1], &mut rng),
                eps_b.select(&[0.5, 0.9, 0.1], &mut rng_b)
            );
            assert_eq!(
                noise.rank(&[0.5, 0.9, 0.1], &mut rng),
                noise_b.rank(&[0.5, 0.9, 0.1], &mut rng_b)
            );
        }
    }

    #[test]
    fn epsilon_greedy_empty_returns_none() {
        let mut e = EpsilonGreedy::paper_default(10);
        let mut rng = Rng::seed_from(0);
        assert_eq!(e.select(&[], &mut rng), None);
    }

    #[test]
    fn epsilon_greedy_mostly_greedy_at_high_exploit() {
        let mut e = EpsilonGreedy::new(Schedule::Constant(0.95));
        let mut rng = Rng::seed_from(1);
        let q = [0.0, 0.0, 5.0, 0.0];
        let mut greedy_hits = 0;
        for _ in 0..1000 {
            if e.select(&q, &mut rng) == Some(2) {
                greedy_hits += 1;
            }
        }
        assert!(greedy_hits > 900, "greedy hits {greedy_hits}");
    }

    #[test]
    fn epsilon_greedy_explores_at_zero_exploit() {
        let mut e = EpsilonGreedy::new(Schedule::Constant(0.0));
        let mut rng = Rng::seed_from(2);
        let q = [0.0, 0.0, 5.0, 0.0];
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[e.select(&q, &mut rng).unwrap()] += 1;
        }
        // Roughly uniform.
        assert!(counts.iter().all(|&c| c > 800), "counts {counts:?}");
    }

    #[test]
    fn epsilon_schedule_advances() {
        let mut e = EpsilonGreedy::paper_default(100);
        let mut rng = Rng::seed_from(3);
        let before = e.exploit_probability();
        for _ in 0..100 {
            e.select(&[1.0, 2.0], &mut rng);
        }
        assert_eq!(e.steps(), 100);
        assert!(e.exploit_probability() > before);
        assert!((e.exploit_probability() - 0.98).abs() < 1e-6);
    }

    #[test]
    fn gaussian_noise_preserves_values_when_disabled() {
        let mut n = GaussianQNoise::new(0.0, Schedule::Constant(1.0));
        let mut rng = Rng::seed_from(4);
        let q = [1.0, 2.0, 3.0];
        assert_eq!(n.perturb(&q, &mut rng), q.to_vec());
    }

    #[test]
    fn gaussian_noise_scale_tracks_q_spread() {
        let mut n = GaussianQNoise::new(1.0, Schedule::Constant(1.0));
        let mut rng = Rng::seed_from(5);
        // Wide spread -> perturbations visibly change the ordering sometimes; tiny spread ->
        // perturbations stay tiny.
        let tight = [1.0, 1.0001, 1.0002];
        let perturbed = n.perturb(&tight, &mut rng);
        for (p, q) in perturbed.iter().zip(tight.iter()) {
            assert!((p - q).abs() < 0.01);
        }
    }

    #[test]
    fn gaussian_noise_changes_ranking_sometimes_but_not_always() {
        let mut n = GaussianQNoise::new(1.0, Schedule::Constant(1.0));
        let mut rng = Rng::seed_from(6);
        let q = [0.1, 0.11, 0.12, 0.13];
        let mut changed = 0;
        for _ in 0..200 {
            if n.rank(&q, &mut rng) != vec![3, 2, 1, 0] {
                changed += 1;
            }
        }
        assert!(changed > 10, "ranking never changed");
        assert!(changed < 200, "ranking always changed");
    }

    #[test]
    fn decayed_noise_becomes_nearly_greedy() {
        let mut n = GaussianQNoise::new(1.0, Schedule::Constant(0.001));
        let mut rng = Rng::seed_from(7);
        let q = [0.0, 10.0, 20.0, 30.0];
        for _ in 0..50 {
            assert_eq!(n.rank(&q, &mut rng), vec![3, 2, 1, 0]);
        }
    }

    #[test]
    fn greedy_rank_sorts_descending() {
        assert_eq!(greedy_rank(&[0.5, 2.0, 1.0]), vec![1, 2, 0]);
        assert!(greedy_rank(&[]).is_empty());
    }
}
