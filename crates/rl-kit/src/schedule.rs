//! Scalar schedules (linear / exponential) shared by the explorers and learning-rate decay.

/// A deterministic scalar schedule evaluated by step count.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Always the same value.
    Constant(f32),
    /// Linear interpolation from `start` to `end` over `steps` steps, then clamped at `end`.
    Linear {
        /// Value at step 0.
        start: f32,
        /// Value at and after `steps`.
        end: f32,
        /// Number of steps over which to interpolate.
        steps: u64,
    },
    /// Exponential decay `start * factor^step`, floored at `min`.
    Exponential {
        /// Value at step 0.
        start: f32,
        /// Per-step multiplicative factor (usually < 1).
        factor: f32,
        /// Lower bound.
        min: f32,
    },
}

impl Schedule {
    /// Value of the schedule at `step`.
    pub fn at(&self, step: u64) -> f32 {
        match *self {
            Schedule::Constant(v) => v,
            Schedule::Linear { start, end, steps } => {
                if steps == 0 || step >= steps {
                    end
                } else {
                    let t = step as f32 / steps as f32;
                    start + (end - start) * t
                }
            }
            Schedule::Exponential { start, factor, min } => {
                let v = start * factor.powf(step as f32);
                if start >= min {
                    v.max(min)
                } else {
                    v.min(min)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat() {
        let s = Schedule::Constant(0.9);
        assert_eq!(s.at(0), 0.9);
        assert_eq!(s.at(1_000_000), 0.9);
    }

    #[test]
    fn linear_interpolates_and_clamps() {
        // The paper's ε grows from 0.9 to 0.98 (probability of following the policy).
        let s = Schedule::Linear {
            start: 0.9,
            end: 0.98,
            steps: 100,
        };
        assert!((s.at(0) - 0.9).abs() < 1e-6);
        assert!((s.at(50) - 0.94).abs() < 1e-6);
        assert!((s.at(100) - 0.98).abs() < 1e-6);
        assert!((s.at(10_000) - 0.98).abs() < 1e-6);
    }

    #[test]
    fn linear_with_zero_steps_is_end() {
        let s = Schedule::Linear {
            start: 1.0,
            end: 0.0,
            steps: 0,
        };
        assert_eq!(s.at(0), 0.0);
    }

    #[test]
    fn exponential_decays_to_floor() {
        // The paper's noise decay factor starts at 1 and decreases to 0.1.
        let s = Schedule::Exponential {
            start: 1.0,
            factor: 0.99,
            min: 0.1,
        };
        assert_eq!(s.at(0), 1.0);
        assert!(s.at(100) < 0.4);
        assert!((s.at(100_000) - 0.1).abs() < 1e-6);
        assert!(s.at(10) > s.at(20));
    }

    #[test]
    fn exponential_can_grow_to_ceiling() {
        let s = Schedule::Exponential {
            start: 0.5,
            factor: 1.05,
            min: 1.0,
        };
        assert_eq!(s.at(0), 0.5);
        assert!((s.at(1_000) - 1.0).abs() < 1e-6);
    }
}
