//! Scalar schedules (linear / exponential) shared by the explorers and learning-rate decay.

/// A deterministic scalar schedule evaluated by step count.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Always the same value.
    Constant(f32),
    /// Linear interpolation from `start` to `end` over `steps` steps, then clamped at `end`.
    Linear {
        /// Value at step 0.
        start: f32,
        /// Value at and after `steps`.
        end: f32,
        /// Number of steps over which to interpolate.
        steps: u64,
    },
    /// Exponential decay `start * factor^step`, floored at `min`.
    Exponential {
        /// Value at step 0.
        start: f32,
        /// Per-step multiplicative factor (usually < 1).
        factor: f32,
        /// Lower bound.
        min: f32,
    },
}

impl Schedule {
    /// Value of the schedule at `step`.
    pub fn at(&self, step: u64) -> f32 {
        match *self {
            Schedule::Constant(v) => v,
            Schedule::Linear { start, end, steps } => {
                if steps == 0 || step >= steps {
                    end
                } else {
                    let t = step as f32 / steps as f32;
                    start + (end - start) * t
                }
            }
            Schedule::Exponential { start, factor, min } => {
                let v = start * factor.powf(step as f32);
                if start >= min {
                    v.max(min)
                } else {
                    v.min(min)
                }
            }
        }
    }
}

/// Checkpoint format: a one-byte variant tag (`0` Constant, `1` Linear, `2`
/// Exponential) followed by the variant's fields in declaration order (f32 raw bits;
/// `steps` as `u64`). Saved so a restored explorer can validate its schedule against
/// the one it was configured with.
impl crowd_ckpt::SaveState for Schedule {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        match *self {
            Schedule::Constant(v) => {
                w.put_u8(0);
                w.put_f32(v);
            }
            Schedule::Linear { start, end, steps } => {
                w.put_u8(1);
                w.put_f32(start);
                w.put_f32(end);
                w.put_u64(steps);
            }
            Schedule::Exponential { start, factor, min } => {
                w.put_u8(2);
                w.put_f32(start);
                w.put_f32(factor);
                w.put_f32(min);
            }
        }
    }
}

impl crowd_ckpt::DecodeState for Schedule {
    fn decode_state(r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<Self> {
        match r.take_u8()? {
            0 => Ok(Schedule::Constant(r.take_f32()?)),
            1 => Ok(Schedule::Linear {
                start: r.take_f32()?,
                end: r.take_f32()?,
                steps: r.take_u64()?,
            }),
            2 => Ok(Schedule::Exponential {
                start: r.take_f32()?,
                factor: r.take_f32()?,
                min: r.take_f32()?,
            }),
            tag => Err(crowd_ckpt::CkptError::Corrupt {
                what: "schedule",
                detail: format!("unknown variant tag {tag}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_roundtrips_every_variant() {
        use crowd_ckpt::{DecodeState, SaveState, StateReader, StateWriter};
        for schedule in [
            Schedule::Constant(0.9),
            Schedule::Linear {
                start: 0.9,
                end: 0.98,
                steps: 2000,
            },
            Schedule::Exponential {
                start: 1.0,
                factor: 0.99,
                min: 0.1,
            },
        ] {
            let mut w = StateWriter::new();
            schedule.save_state(&mut w);
            let bytes = w.into_bytes();
            let mut r = StateReader::new(&bytes);
            assert_eq!(Schedule::decode_state(&mut r).unwrap(), schedule);
            r.finish("schedule").unwrap();
        }
        // Unknown tags are corrupt, not a panic.
        let mut r = StateReader::new(&[9]);
        assert!(Schedule::decode_state(&mut r).is_err());
    }

    #[test]
    fn constant_is_flat() {
        let s = Schedule::Constant(0.9);
        assert_eq!(s.at(0), 0.9);
        assert_eq!(s.at(1_000_000), 0.9);
    }

    #[test]
    fn linear_interpolates_and_clamps() {
        // The paper's ε grows from 0.9 to 0.98 (probability of following the policy).
        let s = Schedule::Linear {
            start: 0.9,
            end: 0.98,
            steps: 100,
        };
        assert!((s.at(0) - 0.9).abs() < 1e-6);
        assert!((s.at(50) - 0.94).abs() < 1e-6);
        assert!((s.at(100) - 0.98).abs() < 1e-6);
        assert!((s.at(10_000) - 0.98).abs() < 1e-6);
    }

    #[test]
    fn linear_with_zero_steps_is_end() {
        let s = Schedule::Linear {
            start: 1.0,
            end: 0.0,
            steps: 0,
        };
        assert_eq!(s.at(0), 0.0);
    }

    #[test]
    fn exponential_decays_to_floor() {
        // The paper's noise decay factor starts at 1 and decreases to 0.1.
        let s = Schedule::Exponential {
            start: 1.0,
            factor: 0.99,
            min: 0.1,
        };
        assert_eq!(s.at(0), 1.0);
        assert!(s.at(100) < 0.4);
        assert!((s.at(100_000) - 0.1).abs() < 1e-6);
        assert!(s.at(10) > s.at(20));
    }

    #[test]
    fn exponential_can_grow_to_ceiling() {
        let s = Schedule::Exponential {
            start: 0.5,
            factor: 1.05,
            min: 1.0,
        };
        assert_eq!(s.at(0), 0.5);
        assert!((s.at(1_000) - 1.0).abs() < 1e-6);
    }
}
