//! Bounded uniform-sampling replay memory.

use crowd_tensor::Rng;
use std::collections::VecDeque;

/// A bounded FIFO buffer of transitions with uniform minibatch sampling.
///
/// The paper's memory buffer ("sorted by occurrence time", Sec. II-C2, size 1000 in
/// Sec. VII-B1) evicts the oldest transition when full. The prioritized variant in
/// [`crate::prioritized`] is used by default; this uniform buffer backs the ablation bench
/// and simpler baselines.
#[derive(Debug, Clone)]
pub struct ReplayBuffer<T> {
    capacity: usize,
    items: VecDeque<T>,
}

impl<T> ReplayBuffer<T> {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayBuffer {
            capacity,
            items: VecDeque::with_capacity(capacity),
        }
    }

    /// Maximum number of stored transitions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when the buffer has reached capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Appends a transition, evicting the oldest one when full. Returns the evicted item.
    pub fn push(&mut self, item: T) -> Option<T> {
        let evicted = if self.is_full() {
            self.items.pop_front()
        } else {
            None
        };
        self.items.push_back(item);
        evicted
    }

    /// Immutable access by insertion order (0 = oldest still stored).
    pub fn get(&self, index: usize) -> Option<&T> {
        self.items.get(index)
    }

    /// Samples `batch` indices uniformly with replacement (empty when the buffer is empty).
    pub fn sample_indices(&self, batch: usize, rng: &mut Rng) -> Vec<usize> {
        if self.items.is_empty() {
            return Vec::new();
        }
        (0..batch).map(|_| rng.below(self.items.len())).collect()
    }

    /// Samples `batch` references uniformly with replacement.
    pub fn sample<'a>(&'a self, batch: usize, rng: &mut Rng) -> Vec<&'a T> {
        self.sample_indices(batch, rng)
            .into_iter()
            .filter_map(|i| self.items.get(i))
            .collect()
    }

    /// Iterates over stored transitions from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

/// Checkpoint format: capacity (`u64`, validated against the live buffer), then the
/// stored transitions oldest-first (`u64` count + elements). FIFO order is the state —
/// restoring preserves which transition the next eviction removes.
impl<T: crowd_ckpt::SaveState> crowd_ckpt::SaveState for ReplayBuffer<T> {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.put_usize(self.capacity);
        w.put_usize(self.items.len());
        for item in &self.items {
            item.save_state(w);
        }
    }
}

impl<T: crowd_ckpt::DecodeState> crowd_ckpt::LoadState for ReplayBuffer<T> {
    fn load_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        let capacity = r.take_usize()?;
        if capacity != self.capacity {
            return Err(crowd_ckpt::CkptError::Corrupt {
                what: "replay buffer",
                detail: format!(
                    "snapshot capacity {capacity} does not match live capacity {}",
                    self.capacity
                ),
            });
        }
        let len = r.take_len("replay buffer items", 1)?;
        if len > capacity {
            return Err(crowd_ckpt::CkptError::Corrupt {
                what: "replay buffer",
                detail: format!("{len} stored items exceed capacity {capacity}"),
            });
        }
        self.items.clear();
        for _ in 0..len {
            self.items.push_back(T::decode_state(r)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_preserves_fifo_order_and_validates_capacity() {
        use crowd_ckpt::{LoadState, SaveState, StateReader, StateWriter};
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5u32 {
            buf.push(i);
        }
        let mut w = StateWriter::new();
        buf.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored: ReplayBuffer<u32> = ReplayBuffer::new(3);
        restored.load_state(&mut StateReader::new(&bytes)).unwrap();
        assert_eq!(restored.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(restored.push(9), Some(2), "eviction order must survive");
        let mut wrong: ReplayBuffer<u32> = ReplayBuffer::new(4);
        assert!(wrong.load_state(&mut StateReader::new(&bytes)).is_err());
    }

    #[test]
    fn push_and_evict_fifo() {
        let mut buf = ReplayBuffer::new(3);
        assert!(buf.is_empty());
        assert_eq!(buf.push(1), None);
        assert_eq!(buf.push(2), None);
        assert_eq!(buf.push(3), None);
        assert!(buf.is_full());
        assert_eq!(buf.push(4), Some(1));
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(buf.get(0), Some(&2));
        assert_eq!(buf.get(5), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _: ReplayBuffer<u8> = ReplayBuffer::new(0);
    }

    #[test]
    fn sampling_from_empty_is_empty() {
        let buf: ReplayBuffer<u8> = ReplayBuffer::new(4);
        let mut rng = Rng::seed_from(0);
        assert!(buf.sample(8, &mut rng).is_empty());
    }

    #[test]
    fn sampling_covers_all_items() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..8 {
            buf.push(i);
        }
        let mut rng = Rng::seed_from(1);
        let mut seen = [false; 8];
        for &v in &buf.sample(256, &mut rng) {
            seen[*v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn clear_empties() {
        let mut buf = ReplayBuffer::new(2);
        buf.push(1);
        buf.clear();
        assert!(buf.is_empty());
    }
}
