//! Reinforcement-learning toolkit used by the DDQN framework and the LinUCB baseline.
//!
//! Contents:
//!
//! * [`ReplayBuffer`] — bounded FIFO memory of transitions sampled uniformly;
//! * [`PrioritizedReplay`] — proportional prioritized experience replay (Schaul et al. 2015,
//!   cited as \[25\] in the paper) backed by a [`SumTree`], with importance-sampling weights;
//! * [`EpsilonGreedy`] — the ε schedule of Sec. VII-B1 (ε grows from 0.9 to 0.98 for
//!   single-task assignment, i.e. the probability of *following* the policy grows);
//! * [`GaussianQNoise`] — the list-recommendation explorer of Sec. VI-B that perturbs Q
//!   values with zero-mean noise whose std matches the current Q-value spread, with a decay
//!   factor;
//! * [`Schedule`] — linear / exponential scalar schedules shared by the above.

pub mod explore;
pub mod prioritized;
pub mod replay;
pub mod schedule;
pub mod sum_tree;

pub use explore::{greedy_rank, EpsilonGreedy, GaussianQNoise};
pub use prioritized::{PrioritizedReplay, PrioritizedSample};
pub use replay::ReplayBuffer;
pub use schedule::Schedule;
pub use sum_tree::SumTree;
