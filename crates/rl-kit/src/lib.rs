//! Reinforcement-learning toolkit used by the DDQN framework and the LinUCB baseline.
//!
//! Contents:
//!
//! * [`ReplayBuffer`] — bounded FIFO memory of transitions sampled uniformly;
//! * [`PrioritizedReplay`] — proportional prioritized experience replay (Schaul et al. 2015,
//!   cited as \[25\] in the paper) backed by a [`SumTree`], with importance-sampling weights;
//! * [`EpsilonGreedy`] — the ε schedule of Sec. VII-B1 (ε grows from 0.9 to 0.98 for
//!   single-task assignment, i.e. the probability of *following* the policy grows);
//! * [`GaussianQNoise`] — the list-recommendation explorer of Sec. VI-B that perturbs Q
//!   values with zero-mean noise whose std matches the current Q-value spread, with a decay
//!   factor;
//! * [`Schedule`] — linear / exponential scalar schedules shared by the above.
//!
//! # Prioritized replay in five lines
//!
//! Transitions go in with maximal priority, come out proportionally to their TD error, and
//! carry an importance-sampling weight that corrects the induced bias:
//!
//! ```
//! use crowd_rl_kit::PrioritizedReplay;
//! use crowd_tensor::Rng;
//!
//! let mut rng = Rng::seed_from(7);
//! let mut memory: PrioritizedReplay<&str> = PrioritizedReplay::new(64);
//! memory.push("small surprise");
//! memory.push("big surprise");
//! memory.update_priority(0, 0.1); // |TD error| of slot 0
//! memory.update_priority(1, 5.0); // slot 1 is 50x more surprising
//! let samples = memory.sample(32, &mut rng);
//! let big = samples.iter().filter(|s| s.index == 1).count();
//! assert!(big > 16, "high-priority transitions dominate the minibatch ({big}/32)");
//! // Every sample carries a weight in (0, 1] for the loss correction.
//! assert!(samples.iter().all(|s| s.weight > 0.0 && s.weight <= 1.0));
//! ```
//!
//! # Exploration
//!
//! The ε-greedy schedule *grows* the probability of following the policy (the paper anneals
//! exploration away over `anneal_steps` decisions):
//!
//! ```
//! use crowd_rl_kit::{greedy_rank, EpsilonGreedy, Schedule};
//! use crowd_tensor::Rng;
//!
//! let mut rng = Rng::seed_from(0);
//! let mut explorer = EpsilonGreedy::paper_default(100);
//! assert!((explorer.exploit_probability() - 0.9).abs() < 1e-6);
//! let q = [0.1, 0.9, 0.3];
//! let choice = explorer.select(&q, &mut rng).unwrap();
//! assert!(choice < q.len());
//! // After the anneal window the explorer follows the policy 98% of the time.
//! for _ in 0..200 {
//!     explorer.select(&q, &mut rng);
//! }
//! assert!(explorer.exploit_probability() >= 0.98);
//! // Pure exploitation is a plain greedy ranking.
//! assert_eq!(greedy_rank(&q), vec![1, 2, 0]);
//! // Schedules are deterministic functions of the step count.
//! let eps = Schedule::Linear { start: 0.9, end: 0.98, steps: 100 };
//! assert_eq!(eps.at(0), 0.9);
//! assert_eq!(eps.at(1_000), 0.98);
//! ```

pub mod explore;
pub mod prioritized;
pub mod replay;
pub mod schedule;
pub mod sum_tree;

pub use explore::{greedy_rank, EpsilonGreedy, GaussianQNoise};
pub use prioritized::{PrioritizedReplay, PrioritizedSample};
pub use replay::ReplayBuffer;
pub use schedule::Schedule;
pub use sum_tree::SumTree;
