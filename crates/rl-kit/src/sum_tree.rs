//! A binary indexed sum tree supporting O(log n) priority updates and prefix-sum sampling —
//! the standard data structure behind proportional prioritized experience replay.

/// Fixed-capacity sum tree. Leaves hold non-negative priorities; internal nodes hold the sum
/// of their children, so sampling a priority-proportional index is a root-to-leaf descent.
#[derive(Debug, Clone)]
pub struct SumTree {
    capacity: usize,
    /// Binary heap layout: `nodes[1]` is the root, leaves start at `capacity`.
    nodes: Vec<f64>,
}

impl SumTree {
    /// Creates a tree able to hold `capacity` priorities, all initially zero.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sum tree capacity must be positive");
        let cap = capacity.next_power_of_two();
        SumTree {
            capacity: cap,
            nodes: vec![0.0; 2 * cap],
        }
    }

    /// Number of leaf slots (rounded up to the next power of two).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total priority mass.
    pub fn total(&self) -> f64 {
        self.nodes[1]
    }

    /// Priority currently stored at `index`.
    pub fn get(&self, index: usize) -> f64 {
        debug_assert!(index < self.capacity);
        self.nodes[self.capacity + index]
    }

    /// Sets the priority at `index`, updating all ancestor sums.
    pub fn set(&mut self, index: usize, priority: f64) {
        debug_assert!(index < self.capacity, "index {index} >= {}", self.capacity);
        debug_assert!(priority >= 0.0 && priority.is_finite());
        let mut node = self.capacity + index;
        let delta = priority - self.nodes[node];
        self.nodes[node] = priority;
        while node > 1 {
            node /= 2;
            self.nodes[node] += delta;
        }
    }

    /// Finds the leaf index whose cumulative priority interval contains `prefix`
    /// (`0 <= prefix < total()`). Returns the last non-empty leaf when rounding pushes the
    /// prefix past the total.
    pub fn find_prefix(&self, prefix: f64) -> usize {
        let mut node = 1;
        let mut remaining = prefix.max(0.0);
        while node < self.capacity {
            let left = 2 * node;
            if remaining < self.nodes[left] || self.nodes[left + 1] <= 0.0 {
                node = left;
            } else {
                remaining -= self.nodes[left];
                node = left + 1;
            }
        }
        node - self.capacity
    }

    /// Minimum non-zero priority among the first `len` leaves (used for importance-sampling
    /// weight normalisation). Returns `None` when all of them are zero.
    pub fn min_priority(&self, len: usize) -> Option<f64> {
        (0..len.min(self.capacity))
            .map(|i| self.nodes[self.capacity + i])
            .filter(|&p| p > 0.0)
            .fold(None, |acc, p| Some(acc.map_or(p, |a: f64| a.min(p))))
    }
}

/// Checkpoint format: leaf capacity (`u64`, already rounded to a power of two), then the
/// **entire** node array (`2·capacity` f64 raw bits) — internal sums included.
///
/// Persisting only the leaves and rebuilding on load would *not* be bit-exact: internal
/// node values accumulate `+=` deltas in the historical order of [`SumTree::set`] calls,
/// so a rebuilt root can differ from the live one in the last ulp, which is enough to
/// flip a [`SumTree::find_prefix`] descent and derail every subsequent prioritized
/// sampling draw. The node array is the state; it is saved verbatim.
impl crowd_ckpt::SaveState for SumTree {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.put_usize(self.capacity);
        w.put_f64_slice(&self.nodes);
    }
}

impl crowd_ckpt::LoadState for SumTree {
    fn load_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        let capacity = r.take_usize()?;
        if capacity != self.capacity {
            return Err(crowd_ckpt::CkptError::Corrupt {
                what: "sum tree",
                detail: format!(
                    "snapshot capacity {capacity} does not match live capacity {}",
                    self.capacity
                ),
            });
        }
        let nodes = r.take_f64_vec()?;
        if nodes.len() != 2 * capacity {
            return Err(crowd_ckpt::CkptError::Corrupt {
                what: "sum tree",
                detail: format!("{} nodes for capacity {capacity}", nodes.len()),
            });
        }
        self.nodes = nodes;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_preserves_internal_sums_bit_for_bit() {
        use crowd_ckpt::{LoadState, SaveState, StateReader, StateWriter};
        // Build a tree through an update history whose internal sums depend on the
        // accumulation order (values with different exponents).
        let mut tree = SumTree::new(8);
        for (i, p) in [1e-3, 7.25, 1e9, 0.1, 3.5, 1e-7, 42.0, 0.9]
            .iter()
            .enumerate()
        {
            tree.set(i, *p);
        }
        tree.set(2, 0.5); // churn so internal nodes carry += residue
        tree.set(5, 123.456);
        let mut w = StateWriter::new();
        tree.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = SumTree::new(8);
        restored.load_state(&mut StateReader::new(&bytes)).unwrap();
        for (a, b) in tree.nodes.iter().zip(&restored.nodes) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Capacity mismatch is a typed error.
        let mut wrong = SumTree::new(16);
        assert!(wrong.load_state(&mut StateReader::new(&bytes)).is_err());
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(SumTree::new(5).capacity(), 8);
        assert_eq!(SumTree::new(8).capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = SumTree::new(0);
    }

    #[test]
    fn set_and_total() {
        let mut t = SumTree::new(4);
        t.set(0, 1.0);
        t.set(1, 2.0);
        t.set(2, 3.0);
        assert!((t.total() - 6.0).abs() < 1e-9);
        t.set(1, 0.5);
        assert!((t.total() - 4.5).abs() < 1e-9);
        assert_eq!(t.get(2), 3.0);
    }

    #[test]
    fn find_prefix_selects_correct_leaf() {
        let mut t = SumTree::new(4);
        t.set(0, 1.0);
        t.set(1, 2.0);
        t.set(2, 3.0);
        t.set(3, 4.0);
        // Cumulative boundaries: [0,1), [1,3), [3,6), [6,10).
        assert_eq!(t.find_prefix(0.5), 0);
        assert_eq!(t.find_prefix(1.0), 1);
        assert_eq!(t.find_prefix(2.9), 1);
        assert_eq!(t.find_prefix(3.0), 2);
        assert_eq!(t.find_prefix(9.9), 3);
    }

    #[test]
    fn find_prefix_skips_zero_leaves() {
        let mut t = SumTree::new(8);
        t.set(3, 5.0);
        for prefix in [0.0, 1.0, 4.9] {
            assert_eq!(t.find_prefix(prefix), 3);
        }
    }

    #[test]
    fn sampling_distribution_is_proportional() {
        use crowd_tensor::Rng;
        let mut t = SumTree::new(4);
        t.set(0, 1.0);
        t.set(1, 3.0);
        let mut rng = Rng::seed_from(0);
        let mut counts = [0usize; 2];
        for _ in 0..20_000 {
            let p = rng.unit() as f64 * t.total();
            counts[t.find_prefix(p)] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn min_priority_ignores_zeros() {
        let mut t = SumTree::new(4);
        assert_eq!(t.min_priority(4), None);
        t.set(0, 2.0);
        t.set(2, 0.5);
        assert_eq!(t.min_priority(4), Some(0.5));
        assert_eq!(t.min_priority(1), Some(2.0));
    }
}
