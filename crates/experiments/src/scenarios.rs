//! The scenario registry: named non-stationary scenarios and scenario-aware
//! session/checkpoint helpers.
//!
//! A [`NamedScenario`] pairs a stable name with a [`ScenarioSpec`]; the registry
//! ([`named_scenarios`]) derives every spec deterministically from the dataset's shape
//! (horizon, worker count), so the same dataset always yields the same scenarios at any
//! scale. `scenario_table` replays the full policy line-up across the registry, and
//! `tests/scenario_equivalence.rs` fences every scenario's bit-identity across thread
//! counts, shard counts and checkpoint/resume.
//!
//! Checkpoints of scenario replays carry the spec itself in an extra `scenario` section
//! ([`scenario_checkpoint`]); [`resume_scenario_session`] refuses to resume a snapshot
//! under a different scenario (the replayed dataset would silently diverge from the
//! checkpointed state). Layout: `docs/CHECKPOINT_FORMAT.md`.

use crate::runner::RunnerConfig;
use crate::session::Session;
use crowd_ckpt::{CkptError, Snapshot, SnapshotFile};
use crowd_sim::{
    Dataset, DayNightCycle, Env, Platform, Policy, ScenarioSpec, ShardSpec, ShardedEnv,
    MINUTES_PER_MONTH,
};

/// Name of the snapshot section holding the [`ScenarioSpec`] (prefixed like the session
/// sections, so batched snapshots can carry one per member).
pub const SCENARIO_SECTION: &str = "scenario";

/// A registered scenario: a stable name, a one-line description for tables and a
/// deterministic spec.
#[derive(Debug, Clone)]
pub struct NamedScenario {
    /// Stable registry name (used in tables, CI logs and snapshot metadata).
    pub name: &'static str,
    /// One-line description shown by `scenario_table`.
    pub description: &'static str,
    /// The compiled perturbation.
    pub spec: ScenarioSpec,
}

impl NamedScenario {
    /// The perturbed dataset this scenario replays.
    pub fn dataset(&self, dataset: &Dataset) -> Dataset {
        self.spec.apply(dataset)
    }
}

/// The built-in scenario registry, derived deterministically from the dataset's shape.
///
/// * `stationary` — the no-op spec; replays the baseline dataset bit-identically.
/// * `flash-crowd` — a 2.5× demand surge over the middle month, 0.7× elsewhere after
///   warm-up (a burst against a mildly quiet background).
/// * `worker-exodus` — every third worker retires at the horizon's midpoint, and every
///   seventh only comes online then (churn in both directions).
/// * `day-night` — arrivals concentrate in a 08:00–20:00 band (1.6× day, 0.4× night).
/// * `category-drift` — from month 1 the task mix rotates one category and pays 0.8×;
///   from the midpoint a second rotation pays 1.5× (composing epochs).
pub fn named_scenarios(dataset: &Dataset) -> Vec<NamedScenario> {
    let horizon = dataset.horizon();
    let midpoint = horizon / 2;
    let mid_month_start = (dataset.months as u64 / 2) * MINUTES_PER_MONTH;
    let mid_month_end = (mid_month_start + MINUTES_PER_MONTH).min(horizon);

    let mut exodus = ScenarioSpec::new(0xE0D5);
    for worker in &dataset.workers {
        if worker.id.0 % 3 == 0 {
            exodus = exodus.with_window(worker.id, 0, midpoint);
        } else if worker.id.0 % 7 == 0 {
            exodus = exodus.with_window(worker.id, midpoint, horizon);
        }
    }

    vec![
        NamedScenario {
            name: "stationary",
            description: "baseline replay, unperturbed",
            spec: ScenarioSpec::new(0),
        },
        NamedScenario {
            name: "flash-crowd",
            description: "2.5x surge over the middle month, 0.7x elsewhere post-warmup",
            spec: ScenarioSpec::new(0xF1A5)
                .with_surge(
                    MINUTES_PER_MONTH,
                    mid_month_start.max(MINUTES_PER_MONTH),
                    0.7,
                )
                .with_surge(mid_month_start, mid_month_end, 2.5)
                .with_surge(mid_month_end, horizon, 0.7),
        },
        NamedScenario {
            name: "worker-exodus",
            description: "every 3rd worker retires at midpoint; every 7th joins then",
            spec: exodus,
        },
        NamedScenario {
            name: "day-night",
            description: "08:00-20:00 band at 1.6x, nights at 0.4x",
            spec: ScenarioSpec::new(0xDA41).with_day_night(DayNightCycle {
                day_from: 8 * 60,
                day_until: 20 * 60,
                day_rate: 1.6,
                night_rate: 0.4,
            }),
        },
        NamedScenario {
            name: "category-drift",
            description: "category rotation +1 at month 1 (0.8x pay), +1 at midpoint (1.5x)",
            spec: ScenarioSpec::new(0xD81F)
                .with_drift(MINUTES_PER_MONTH, 1, 0.8)
                .with_drift(midpoint, 1, 1.5),
        },
    ]
}

/// The perturbed dataset of one scenario (convenience wrapper over
/// [`ScenarioSpec::apply`]).
pub fn scenario_dataset(dataset: &Dataset, scenario: &NamedScenario) -> Dataset {
    scenario.spec.apply(dataset)
}

/// A [`Platform`] session replaying `scenario` over `dataset`.
pub fn scenario_session(
    dataset: &Dataset,
    scenario: &NamedScenario,
    config: &RunnerConfig,
) -> Session<Platform> {
    Session::for_dataset(&scenario.spec.apply(dataset), config)
}

/// A [`ShardedEnv`] session replaying `scenario` over `dataset` — the sharded twin of
/// [`scenario_session`]. Because the spec is applied to the dataset *before* either
/// environment is built, both replay the identical event stream: bit-identity across
/// shard counts is inherited from the stationary proof, and `scenario_equivalence`
/// re-fences it per scenario.
pub fn scenario_session_sharded(
    dataset: &Dataset,
    scenario: &NamedScenario,
    config: &RunnerConfig,
    shards: ShardSpec,
) -> Session<ShardedEnv> {
    Session::for_dataset_sharded(&scenario.spec.apply(dataset), config, shards)
}

/// Checkpoints a scenario session: the usual `session` / `env` / `policy` sections plus
/// a [`SCENARIO_SECTION`] carrying the spec, so a resume can verify it is replaying the
/// same scenario.
pub fn scenario_checkpoint<E>(
    session: &mut Session<E>,
    policy: &dyn Policy,
    spec: &ScenarioSpec,
) -> crowd_ckpt::Result<Snapshot>
where
    E: Env + crowd_ckpt::SaveState,
{
    let mut snapshot = session.checkpoint(policy)?;
    snapshot.put(SCENARIO_SECTION, spec);
    Ok(snapshot)
}

/// Resumes a scenario session, first checking the snapshot's [`SCENARIO_SECTION`]
/// against `spec` by fingerprint. A missing section (a stationary snapshot) or a
/// mismatched spec yields [`CkptError::Corrupt`] — resuming state produced under a
/// different perturbation would silently diverge from the replayed event stream.
pub fn resume_scenario_session<E>(
    session: &mut Session<E>,
    policy: &mut dyn Policy,
    file: &SnapshotFile,
    spec: &ScenarioSpec,
) -> crowd_ckpt::Result<()>
where
    E: Env + crowd_ckpt::LoadState,
{
    let stored: ScenarioSpec = file.decode(SCENARIO_SECTION)?;
    if stored.fingerprint() != spec.fingerprint() {
        return Err(CkptError::Corrupt {
            what: "scenario section",
            detail: format!(
                "snapshot was taken under a different scenario (stored fingerprint \
                 {:#010x}, expected {:#010x})",
                stored.fingerprint(),
                spec.fingerprint()
            ),
        });
    }
    session.resume(policy, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_baselines::{Benefit, LinUcb, ListMode};
    use crowd_sim::SimConfig;

    #[test]
    fn registry_has_stationary_plus_four_scenarios() {
        let dataset = SimConfig::tiny().generate();
        let scenarios = named_scenarios(&dataset);
        assert!(scenarios.len() >= 5);
        assert_eq!(scenarios[0].name, "stationary");
        assert!(scenarios[0].spec.is_noop());
        for scenario in &scenarios[1..] {
            assert!(!scenario.spec.is_noop(), "{} is a no-op", scenario.name);
        }
        // Names are unique and stable.
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len());
    }

    #[test]
    fn registry_is_deterministic_in_the_dataset() {
        let dataset = SimConfig::tiny().generate();
        let a = named_scenarios(&dataset);
        let b = named_scenarios(&dataset);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.spec.fingerprint(), y.spec.fingerprint());
        }
    }

    #[test]
    fn scenario_checkpoint_rejects_cross_scenario_resume() {
        let dataset = SimConfig::tiny().generate();
        let cfg = RunnerConfig::default();
        let scenarios = named_scenarios(&dataset);
        let surge = scenarios.iter().find(|s| s.name == "flash-crowd").unwrap();
        let drift = scenarios
            .iter()
            .find(|s| s.name == "category-drift")
            .unwrap();

        let mut policy = LinUcb::new(Benefit::Worker, ListMode::RankAll, 0.5);
        let mut session = scenario_session(&dataset, surge, &cfg);
        for _ in 0..10 {
            session.step(&mut policy);
        }
        let snapshot = scenario_checkpoint(&mut session, &policy, &surge.spec).expect("checkpoint");
        let file = SnapshotFile::from_bytes(snapshot.to_bytes()).expect("parse");

        // Same scenario: resumes fine.
        let mut resumed = scenario_session(&dataset, surge, &cfg);
        let mut resumed_policy = LinUcb::new(Benefit::Worker, ListMode::RankAll, 0.5);
        resume_scenario_session(&mut resumed, &mut resumed_policy, &file, &surge.spec)
            .expect("same-scenario resume");

        // Different scenario: refused.
        let mut wrong = scenario_session(&dataset, drift, &cfg);
        let mut wrong_policy = LinUcb::new(Benefit::Worker, ListMode::RankAll, 0.5);
        let err = resume_scenario_session(&mut wrong, &mut wrong_policy, &file, &drift.spec)
            .expect_err("cross-scenario resume must fail");
        assert!(matches!(err, CkptError::Corrupt { .. }), "{err:?}");
    }
}
