//! The [`Session`] facade: owns the replay loop of the paper's evaluation protocol and
//! drives any [`Policy`] against any [`Env`] through the zero-copy view interface, one
//! simulation at a time or `N` of them in lock-step ([`SessionBatch`]).
//!
//! A session advances one worker arrival per [`Session::step`]:
//!
//! 1. arrivals inside the warm-up window are served a random full-pool ranking (identical
//!    for every policy) and recorded into the warm-start history;
//! 2. on the first post-warm-up arrival the policy receives the history via
//!    [`Policy::warm_start`];
//! 3. evaluated arrivals run the hot loop `Env::next_arrival` → `Policy::act` →
//!    `Env::apply` → `Policy::observe` with a reusable [`Decision`] buffer and borrowed
//!    views — no per-arrival clones of task or worker feature vectors;
//! 4. decision time and model-update time are timed separately (Table I), and the metric
//!    accumulator records every evaluated feedback.
//!
//! [`SessionBatch`] steps many independent sessions in one call. With
//! [`SessionBatch::step_all`] each session is paired with its own policy; with
//! [`SessionBatch::step_batched`] one shared [`BatchedPolicy`] decides on every live
//! session's arrival in a single `act_batch` call — for the DDQN agent that is **one
//! Q-network forward pass for `N` simulations** (see `ARCHITECTURE.md` at the repository
//! root for where this sits in the layering).
//!
//! # Parallel stepping
//!
//! Give the batch a pool ([`SessionBatch::set_pool`]) and
//! [`SessionBatch::step_all_parallel`] shards the session/policy *pairs* across pool
//! workers: each pair owns everything its step touches (environment, metrics, timers,
//! policy, RNG streams), so sharding is deterministic by construction and the outcomes
//! are **bit-identical** to [`SessionBatch::step_all`] at any thread count
//! (`tests/parallel_equivalence.rs`). [`SessionBatch::step_batched`] uses the same pool
//! for its pack/unpack stages around the single shared `act_batch` call: environment
//! `apply` + metric recording run per session in parallel, while the shared policy's
//! `observe` calls stay sequential in session order (identical to the serial round).
//!
//! # Checkpoint / resume
//!
//! Between steps, [`Session::checkpoint`] snapshots the whole run — replay-protocol
//! progress (event cursor, warm-up phase and history, metric samples, timers),
//! environment state and policy state — into a `crowd_ckpt` snapshot;
//! [`Session::resume`] restores it into a freshly constructed session + policy, from
//! which the replay continues **bit-identically** to an uninterrupted run
//! (`tests/checkpoint_equivalence.rs`, at any `CROWD_THREADS`). [`SessionBatch`] has
//! per-member variants ([`SessionBatch::checkpoint`] / [`SessionBatch::resume`], plus
//! `_shared` twins for the shared-policy batched flow), and `table1_efficiency` wires
//! the subsystem to the command line (`--checkpoint-every N` / `--resume PATH`). The
//! byte-level snapshot layout is specified in `docs/CHECKPOINT_FORMAT.md`.

use crate::runner::{RunOutcome, RunnerConfig};
use crowd_ckpt::{CkptError, Snapshot, SnapshotFile, StateReader, StateWriter};
use crowd_metrics::{MetricsAccumulator, UpdateTimer};
use crowd_sim::{
    ArrivalContext, ArrivalView, BatchedPolicy, BoxedPolicy, Dataset, Decision, Env, Platform,
    Policy, PolicyFeedback, ShardSpec, ShardedEnv, TaskId,
};
use crowd_tensor::{Rng, ThreadPool};
use std::time::Instant;

/// A policy hook recorded during the env-only advance ([`Session::advance_env`]) and
/// replayed by [`Session::drain_hooks`] — the split that lets a batch advance many
/// sessions' environments in parallel while the shared policy's hooks stay sequential.
/// Hooks never touch the environment, so deferring them past the advance loop hands the
/// policy the exact call sequence of the fused path.
#[derive(Debug, Clone, Copy)]
enum PendingHook {
    /// `policy.end_of_day(day)` — timed as model-update time.
    EndOfDay(usize),
    /// `policy.warm_start(&history)` — the one-time warm-up hand-off, untimed.
    WarmStart,
}

/// One replay of a dataset against one policy, steppable one arrival at a time.
#[derive(Debug)]
pub struct Session<E: Env = Platform> {
    env: E,
    config: RunnerConfig,
    decision: Decision,
    metrics: MetricsAccumulator,
    update_timer: UpdateTimer,
    act_timer: UpdateTimer,
    warmup_rng: Rng,
    warmup_order: Vec<TaskId>,
    warmup_history: Vec<(ArrivalContext, PolicyFeedback)>,
    warm_started: bool,
    current_day: Option<usize>,
    evaluated_arrivals: usize,
    done: bool,
    /// Policy hooks recorded by [`Session::advance_env`], drained (in order) by
    /// [`Session::drain_hooks`]. Always empty between steps — both stepping paths drain
    /// before returning — so it never enters a checkpoint.
    pending_hooks: Vec<PendingHook>,
}

impl Session<Platform> {
    /// Builds a session over a [`Platform`] replay of `dataset` with the default feature
    /// space — the standard experiment setup.
    pub fn for_dataset(dataset: &Dataset, config: &RunnerConfig) -> Self {
        let features = Platform::default_feature_space(dataset);
        let platform = Platform::new(dataset.clone(), features, config.platform_seed);
        Session::new(platform, config)
    }
}

impl Session<ShardedEnv> {
    /// Builds a session over a [`ShardedEnv`] replay of `dataset` with the default
    /// feature space — the sharded twin of [`Session::for_dataset`]. With a default
    /// (f32) spec the replay is bit-identical to the `Platform` session at any shard
    /// count (`tests/shard_equivalence.rs`).
    pub fn for_dataset_sharded(dataset: &Dataset, config: &RunnerConfig, spec: ShardSpec) -> Self {
        let features = Platform::default_feature_space(dataset);
        let env = ShardedEnv::new(dataset.clone(), features, config.platform_seed, spec);
        Session::new(env, config)
    }
}

impl<E: Env> Session<E> {
    /// Wraps an environment in a fresh session.
    pub fn new(env: E, config: &RunnerConfig) -> Self {
        Session {
            env,
            config: config.clone(),
            decision: Decision::new(),
            metrics: MetricsAccumulator::new(config.top_k),
            update_timer: UpdateTimer::new(),
            act_timer: UpdateTimer::new(),
            warmup_rng: Rng::seed_from(config.warmup_seed),
            warmup_order: Vec::new(),
            warmup_history: Vec::new(),
            warm_started: config.warmup_months == 0,
            current_day: None,
            evaluated_arrivals: 0,
            done: false,
            pending_hooks: Vec::new(),
        }
    }

    /// The wrapped environment.
    pub fn env(&self) -> &E {
        &self.env
    }

    /// Mutable access to the wrapped environment (equivalence tests probe RNG streams
    /// and fingerprints through this).
    pub fn env_mut(&mut self) -> &mut E {
        &mut self.env
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &MetricsAccumulator {
        &self.metrics
    }

    /// Number of evaluated (post-warm-up) arrivals so far.
    pub fn evaluated_arrivals(&self) -> usize {
        self.evaluated_arrivals
    }

    /// True once the event stream is exhausted.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The **env-only** half of advancing to the next evaluated arrival: consumes
    /// warm-up arrivals (random full-pool rankings from the session-owned warm-up RNG),
    /// empty pools and day boundaries, recording the policy hooks they imply into
    /// `pending_hooks` instead of calling them. Touches only this session's own state,
    /// so a batch may run it for many sessions in parallel; the caller must follow up
    /// with [`Session::drain_hooks`] before the policy acts.
    fn advance_env(&mut self) -> bool {
        if self.done {
            return false;
        }
        loop {
            if !self.env.next_arrival() {
                self.done = true;
                return false;
            }
            let (time, empty) = {
                let view = self.env.arrival();
                (view.time, view.is_empty())
            };
            let month = Dataset::month_of(time);
            let day = Dataset::day_of(time);

            // End-of-day hook (supervised retraining); replayed by `drain_hooks`, where
            // it counts as model update time.
            if self.warm_started {
                if let Some(prev_day) = self.current_day {
                    if day != prev_day {
                        self.pending_hooks.push(PendingHook::EndOfDay(prev_day));
                    }
                }
            }
            self.current_day = Some(day);

            if month < self.config.warmup_months {
                // Initialisation window: random full-pool ranking, identical for every
                // policy.
                if empty {
                    continue;
                }
                self.decision.clear();
                {
                    let view = self.env.arrival();
                    self.warmup_order.clear();
                    self.warmup_order
                        .extend((0..view.n_tasks()).map(|i| view.task_id(i)));
                }
                self.warmup_rng.shuffle(&mut self.warmup_order);
                self.decision.extend(self.warmup_order.iter().copied());
                self.env.apply(&self.decision);
                // Owned history records are gathered only here, outside the hot loop.
                let context = self.env.arrival().to_context();
                let feedback = self.env.feedback().to_feedback();
                self.warmup_history.push((context, feedback));
                continue;
            }

            if !self.warm_started {
                self.pending_hooks.push(PendingHook::WarmStart);
                self.warm_started = true;
            }

            if empty {
                continue;
            }

            return true;
        }
    }

    /// Replays the policy hooks recorded by [`Session::advance_env`], in recording
    /// order. For a shared policy this must run per session, in session order —
    /// exactly how [`SessionBatch::step_batched`] sequences it.
    fn drain_hooks(&mut self, policy: &mut (impl Policy + ?Sized)) {
        if self.pending_hooks.is_empty() {
            return;
        }
        let mut hooks = std::mem::take(&mut self.pending_hooks);
        for hook in hooks.drain(..) {
            match hook {
                PendingHook::EndOfDay(day) => self.update_timer.time(|| policy.end_of_day(day)),
                PendingHook::WarmStart => policy.warm_start(&self.warmup_history),
            }
        }
        // Hand the (now empty) buffer back so its capacity is reused across steps.
        self.pending_hooks = hooks;
    }

    /// Advances the event stream to the next *evaluated* arrival, consuming warm-up
    /// arrivals, empty pools and day boundaries on the way, and leaves the environment
    /// positioned on it. Returns `false` once the stream is exhausted.
    ///
    /// Shared by sequential [`Session::step`] and [`SessionBatch::step_batched`]: after a
    /// `true` return the caller produces a decision into `self.decision` and calls
    /// [`Session::commit_decision`]. Composed from the env-only advance and the policy
    /// hook replay; since hooks never touch the environment, the fused and split paths
    /// hand the policy identical call sequences.
    fn advance_to_arrival(&mut self, policy: &mut (impl Policy + ?Sized)) -> bool {
        let live = self.advance_env();
        self.drain_hooks(policy);
        live
    }

    /// Applies `self.decision` to the pending arrival and records the metrics — the
    /// policy-free half of committing a decision. Touches only this session's own
    /// environment and accumulator, so a batch may run it for many sessions in parallel;
    /// the staged-commit contract keeps the arrival and feedback views valid for the
    /// subsequent [`Session::observe_feedback`].
    fn apply_and_record(&mut self) {
        let month = Dataset::month_of(self.env.arrival().time);
        self.env.apply(&self.decision);
        let feedback = self.env.feedback();
        self.metrics
            .record(month - self.config.warmup_months, &feedback);
        self.evaluated_arrivals += 1;
    }

    /// Hands the (still valid) arrival/feedback views to the policy's `observe`, timed —
    /// the policy half of committing a decision. Must run after
    /// [`Session::apply_and_record`] and, for a shared policy, in session order.
    fn observe_feedback(&mut self, policy: &mut (impl Policy + ?Sized)) {
        let view = self.env.arrival();
        let feedback = self.env.feedback();
        self.update_timer.time(|| policy.observe(&view, &feedback));
    }

    /// Applies `self.decision` to the pending arrival, records the metrics and hands the
    /// feedback to the policy's `observe`. Second half of [`Session::step`], called by
    /// [`SessionBatch::step_batched`] after the batched act filled the decision buffer.
    fn commit_decision(&mut self, policy: &mut (impl Policy + ?Sized)) {
        self.apply_and_record();
        self.observe_feedback(policy);
    }

    /// Advances the replay by one *evaluated* arrival (warm-up arrivals are consumed
    /// internally). Returns `false` once the event stream is exhausted.
    pub fn step(&mut self, policy: &mut (impl Policy + ?Sized)) -> bool {
        if !self.advance_to_arrival(policy) {
            return false;
        }
        // The Policy contract promises an empty buffer on entry to `act`.
        self.decision.clear();
        {
            let view = self.env.arrival();
            let decision = &mut self.decision;
            self.act_timer.time(|| policy.act(&view, decision));
        }
        self.commit_decision(policy);
        true
    }

    /// Runs the session to completion; returns the number of evaluated arrivals.
    pub fn run(&mut self, policy: &mut (impl Policy + ?Sized)) -> usize {
        while self.step(policy) {}
        self.evaluated_arrivals
    }

    /// Serialises the session's replay-protocol progress: warm-up months configured
    /// (validation), metric samples, decision/update timers, the warm-up RNG and — only
    /// while still inside the warm-up window — the accumulated warm-start history, plus
    /// the day cursor, evaluated-arrival count and done flag.
    fn save_session_state(&self, w: &mut StateWriter) {
        // Both stepping paths drain hooks before returning, so between steps — the only
        // place checkpoints are taken — there is never one pending (and the snapshot
        // format needs no hook section).
        debug_assert!(
            self.pending_hooks.is_empty(),
            "checkpoint taken with undrained policy hooks"
        );
        w.put_usize(self.config.warmup_months);
        w.save(&self.metrics);
        w.save(&self.update_timer);
        w.save(&self.act_timer);
        w.save(&self.warmup_rng);
        w.put_bool(self.warm_started);
        w.save(&self.current_day.map(|d| d as u64));
        w.put_usize(self.evaluated_arrivals);
        w.put_bool(self.done);
        if self.warm_started {
            // After the hand-off the history is never read again; keep snapshots small.
            w.put_usize(0);
        } else {
            w.save(&self.warmup_history);
        }
    }

    fn load_session_state(&mut self, r: &mut StateReader<'_>) -> crowd_ckpt::Result<()> {
        let warmup_months = r.take_usize()?;
        if warmup_months != self.config.warmup_months {
            return Err(CkptError::Corrupt {
                what: "session state",
                detail: format!(
                    "snapshot was taken with {warmup_months} warm-up month(s), this session is configured with {}",
                    self.config.warmup_months
                ),
            });
        }
        r.load(&mut self.metrics)?;
        r.load(&mut self.update_timer)?;
        r.load(&mut self.act_timer)?;
        r.load(&mut self.warmup_rng)?;
        self.warm_started = r.take_bool()?;
        self.current_day = r.decode::<Option<u64>>()?.map(|d| d as usize);
        self.evaluated_arrivals = r.take_usize()?;
        self.done = r.take_bool()?;
        self.warmup_history = r.decode()?;
        self.decision.clear();
        self.warmup_order.clear();
        self.pending_hooks.clear();
        Ok(())
    }
}

impl<E: Env + crowd_ckpt::SaveState> Session<E> {
    /// Adds this session's full state — replay protocol progress (`{prefix}session`),
    /// environment (`{prefix}env`) and policy (`{prefix}policy`) — to `snapshot`.
    ///
    /// Must be called **between steps** (after a [`Session::step`] returned, before the
    /// next one). Staged environment effects are flushed first; the commit applies the
    /// exact mutations the next `next_arrival` would have applied, so taking a
    /// checkpoint never perturbs the continuing run — with or without a kill, the
    /// remainder of the replay is bit-identical to an uninterrupted one
    /// (`tests/checkpoint_equivalence.rs`).
    ///
    /// Fails with [`CkptError::Unsupported`] when the policy does not implement
    /// checkpointing ([`Policy::checkpoint_state`]); nothing is added to `snapshot` in
    /// that case.
    pub fn checkpoint_into(
        &mut self,
        policy: &dyn Policy,
        snapshot: &mut Snapshot,
        prefix: &str,
    ) -> crowd_ckpt::Result<()> {
        let mut policy_bytes = StateWriter::new();
        policy.checkpoint_state(&mut policy_bytes)?;
        self.env.flush();
        let mut session_bytes = StateWriter::new();
        self.save_session_state(&mut session_bytes);
        let mut env_bytes = StateWriter::new();
        self.env.save_state(&mut env_bytes);
        snapshot.put_raw(&format!("{prefix}session"), session_bytes.into_bytes());
        snapshot.put_raw(&format!("{prefix}env"), env_bytes.into_bytes());
        snapshot.put_raw(&format!("{prefix}policy"), policy_bytes.into_bytes());
        Ok(())
    }

    /// One-session convenience over [`Session::checkpoint_into`]: a snapshot with the
    /// unprefixed `session` / `env` / `policy` sections.
    pub fn checkpoint(&mut self, policy: &dyn Policy) -> crowd_ckpt::Result<Snapshot> {
        let mut snapshot = Snapshot::new();
        self.checkpoint_into(policy, &mut snapshot, "")?;
        Ok(snapshot)
    }
}

impl<E: Env + crowd_ckpt::LoadState> Session<E> {
    /// Restores the state written by [`Session::checkpoint_into`] under `prefix` into
    /// this session (which must have been freshly constructed over the **same** dataset
    /// and [`RunnerConfig`]) and `policy` (freshly constructed from the same
    /// configuration). After a successful resume, stepping continues bit-identically to
    /// the run the snapshot was taken from. On error the session and policy are left in
    /// an unspecified (but memory-safe) state and must be discarded.
    pub fn resume_sections(
        &mut self,
        policy: &mut dyn Policy,
        file: &SnapshotFile,
        prefix: &str,
    ) -> crowd_ckpt::Result<()> {
        let session_name = format!("{prefix}session");
        let mut r = file.reader(&session_name)?;
        self.load_session_state(&mut r)?;
        r.finish("session state")?;
        file.load_into(&format!("{prefix}env"), &mut self.env)?;
        let mut r = file.reader(&format!("{prefix}policy"))?;
        policy.restore_state(&mut r)?;
        r.finish("policy state")
    }

    /// One-session convenience over [`Session::resume_sections`] (unprefixed names, as
    /// written by [`Session::checkpoint`]).
    pub fn resume(
        &mut self,
        policy: &mut dyn Policy,
        file: &SnapshotFile,
    ) -> crowd_ckpt::Result<()> {
        self.resume_sections(policy, file, "")
    }
}

impl<E: Env> Session<E> {
    /// Consumes the session into the final [`RunOutcome`].
    pub fn finish(mut self, policy_name: &str) -> RunOutcome {
        // A partially-stepped session may still hold staged effects from its last apply;
        // flush them so the reported totals include the final arrival's completion.
        self.env.flush();
        RunOutcome {
            policy: policy_name.to_string(),
            metrics: self.metrics,
            update_timer: self.update_timer,
            act_timer: self.act_timer,
            final_total_quality: self.env.total_task_quality(),
            total_completions: self.env.total_completions(),
            evaluated_arrivals: self.evaluated_arrivals,
        }
    }
}

/// `N` independent sessions stepped in lock-step — one call advances every live simulation
/// by one evaluated arrival. [`SessionBatch::step_all`] pairs each session with its own
/// policy; [`SessionBatch::step_batched`] drives every session with one shared
/// [`BatchedPolicy`], collecting all live arrivals into a single `act_batch` call so the
/// DDQN agent can score them in one Q-network forward pass.
#[derive(Debug, Default)]
pub struct SessionBatch<E: Env = Platform> {
    sessions: Vec<Session<E>>,
    /// Scratch decision buffers for `step_batched`, index-aligned with `live`; reused
    /// across rounds so steady-state batched stepping allocates only the view list.
    scratch_decisions: Vec<Decision>,
    /// Scratch list of the live sessions' indexes for the current batched round.
    live: Vec<usize>,
    /// Pool used by [`SessionBatch::step_all_parallel`] and the pack/unpack stages of
    /// [`SessionBatch::step_batched`]. Serial by default.
    pool: ThreadPool,
}

impl<E: Env> SessionBatch<E> {
    /// An empty batch.
    pub fn new() -> Self {
        SessionBatch {
            sessions: Vec::new(),
            scratch_decisions: Vec::new(),
            live: Vec::new(),
            pool: ThreadPool::serial(),
        }
    }

    /// Sets the pool used by the batch's parallel stepping paths (builder form).
    pub fn with_pool(mut self, pool: ThreadPool) -> Self {
        self.set_pool(pool);
        self
    }

    /// Sets the pool used by the batch's parallel stepping paths. Stepping results are
    /// bit-identical at any thread count; only wall clock changes.
    pub fn set_pool(&mut self, pool: ThreadPool) {
        self.pool = pool;
    }

    /// The batch's pool.
    pub fn pool(&self) -> ThreadPool {
        self.pool
    }

    /// Adds a session to the batch.
    pub fn push(&mut self, session: Session<E>) {
        self.sessions.push(session);
    }

    /// Number of sessions in the batch.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when the batch holds no session.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The sessions, in insertion order.
    pub fn sessions(&self) -> &[Session<E>] {
        &self.sessions
    }

    /// Steps every live session once against its paired policy; returns how many sessions
    /// are still live. `policies` must align with the sessions by index.
    pub fn step_all(&mut self, policies: &mut [BoxedPolicy]) -> usize {
        assert_eq!(
            self.sessions.len(),
            policies.len(),
            "one policy per session required"
        );
        let mut live = 0;
        for (session, policy) in self.sessions.iter_mut().zip(policies.iter_mut()) {
            if session.step(policy.as_mut()) {
                live += 1;
            }
        }
        live
    }

    /// Steps until every session is exhausted.
    pub fn run_all(&mut self, policies: &mut [BoxedPolicy]) {
        while self.step_all(policies) > 0 {}
    }

    /// [`SessionBatch::step_all`] with the session/policy pairs sharded across the
    /// batch's pool ([`SessionBatch::set_pool`]): each pool worker steps a contiguous
    /// shard of pairs, one arrival each. Returns how many sessions are still live.
    ///
    /// A pair owns everything its step touches — the session's environment, decision
    /// buffer, metrics, timers and warm-up RNG, plus the policy with its own model state
    /// and RNG streams — so the shards share nothing and the outcomes (metrics,
    /// completions, qualities, every policy's post-run state) are **bit-identical** to
    /// sequential [`SessionBatch::step_all`] at any thread count, proven end to end by
    /// `tests/parallel_equivalence.rs`. This is the replica-sweep hot path: `N`
    /// simulations of the paper's protocol for ~`N/threads` the wall clock.
    pub fn step_all_parallel(&mut self, policies: &mut [BoxedPolicy]) -> usize
    where
        E: Send,
    {
        assert_eq!(
            self.sessions.len(),
            policies.len(),
            "one policy per session required"
        );
        if self.pool.is_serial() {
            return self.step_all(policies);
        }
        let mut pairs: Vec<(&mut Session<E>, &mut BoxedPolicy)> =
            self.sessions.iter_mut().zip(policies.iter_mut()).collect();
        let pool = self.pool;
        pool.par_chunks(&mut pairs, 1, |_, shard| {
            let mut live = 0usize;
            for (session, policy) in shard.iter_mut() {
                if session.step(policy.as_mut()) {
                    live += 1;
                }
            }
            live
        })
        .into_iter()
        .sum()
    }

    /// Runs [`SessionBatch::step_all_parallel`] rounds until every session is exhausted.
    pub fn run_all_parallel(&mut self, policies: &mut [BoxedPolicy])
    where
        E: Send,
    {
        while self.step_all_parallel(policies) > 0 {}
    }

    /// Steps every live session once against one **shared** policy, collecting all pending
    /// arrivals into a single [`BatchedPolicy::act_batch`] call; returns how many sessions
    /// are still live.
    ///
    /// One round runs in three phases:
    ///
    /// 1. every session advances to its next evaluated arrival (warm-up windows, empty
    ///    pools and end-of-day hooks are consumed per session, in session order);
    /// 2. the policy decides on all live arrivals in one `act_batch` call — for the DDQN
    ///    agent a single packed Q-network forward pass;
    /// 3. each decision is applied and observed, in session order.
    ///
    /// Equivalence with sequential stepping (`for s in sessions { s.step(&mut policy) }`):
    /// every view is evaluated against the parameters the policy held at the start of
    /// phase 2, so the round is bit-identical to the sequential one exactly when `act` is
    /// a pure function of those parameters — i.e. nothing in `observe`/`warm_start`/
    /// `end_of_day` changes what `act` would return. The frozen-learning DDQN agent
    /// satisfies this and `tests/batched_equivalence.rs` proves it (metrics, completions
    /// and RNG stream all match bit for bit). A *training* agent updates its networks
    /// between the acts of a sequential round, which batched stepping intentionally trades
    /// away for the shared forward pass — standard vectorized-environment semantics.
    ///
    /// The batched act time is split evenly across the live sessions' decision timers so
    /// per-session `RunOutcome`s stay comparable with the sequential path.
    ///
    /// With a multi-thread pool ([`SessionBatch::set_pool`]) the *unpack* stage after
    /// `act_batch` — per-session `Env::apply` plus metric recording — runs sharded across
    /// workers (every session owns its environment and accumulator), while the shared
    /// policy's `observe` calls stay sequential in session order. Within each session the
    /// apply → record → observe order is unchanged and the policy sees the exact call
    /// sequence of the serial round, so batched stepping stays **bit-identical** at any
    /// thread count. (The matching *pack* stage — building all views' state tensors in
    /// parallel — lives inside the DDQN agent's `act_batch`; hand the agent the same pool
    /// to enable it.)
    pub fn step_batched<P: BatchedPolicy + ?Sized>(&mut self, policy: &mut P) -> usize
    where
        E: Send,
    {
        self.live.clear();
        // Phase 1a: env-only advance — each session consumes its own warm-up arrivals,
        // empty pools and day boundaries, recording policy hooks instead of calling
        // them. No shared state, so large batches shard across the pool (the sharded
        // env's per-shard advance composes underneath when it was given its own pool).
        let advance_pool = if self.sessions.len() >= self.pool.threads() * 4 {
            self.pool
        } else {
            ThreadPool::serial()
        };
        let live_flags: Vec<bool> = advance_pool
            .par_chunks(&mut self.sessions, 1, |_, shard| {
                shard
                    .iter_mut()
                    .map(|session| session.advance_env())
                    .collect::<Vec<bool>>()
            })
            .into_iter()
            .flatten()
            .collect();
        // Phase 1b: the recorded hooks replay against the shared policy sequentially,
        // in session order — the exact call sequence of the fused sequential advance.
        for (i, session) in self.sessions.iter_mut().enumerate() {
            session.drain_hooks(policy);
            if live_flags[i] {
                self.live.push(i);
            }
        }
        let n = self.live.len();
        if n == 0 {
            return 0;
        }
        if self.scratch_decisions.len() < n {
            self.scratch_decisions.resize_with(n, Decision::new);
        }
        let start = Instant::now();
        {
            // The Policy contract promises empty buffers on entry to `act_batch`.
            for decision in &mut self.scratch_decisions[..n] {
                decision.clear();
            }
            let sessions = &self.sessions;
            let views: Vec<ArrivalView<'_>> = self
                .live
                .iter()
                .map(|&i| sessions[i].env.arrival())
                .collect();
            policy.act_batch(&views, &mut self.scratch_decisions[..n]);
        }
        let per_session = start.elapsed() / n as u32;
        // Collect the live sessions once (`self.live` is ascending, so a single merge
        // walk over `iter_mut` suffices) and swap their decisions in.
        let mut live_iter = self.live.iter().copied().peekable();
        let mut live_sessions: Vec<&mut Session<E>> = Vec::with_capacity(n);
        for (i, session) in self.sessions.iter_mut().enumerate() {
            if live_iter.peek() == Some(&i) {
                live_iter.next();
                live_sessions.push(session);
            }
        }
        for (session, scratch) in live_sessions.iter_mut().zip(&mut self.scratch_decisions) {
            std::mem::swap(&mut session.decision, scratch);
            session.act_timer.record(per_session);
        }
        // Unpack: apply + record per session (parallel — no policy involved), then the
        // shared policy observes every feedback sequentially in session order. Small
        // rounds run the unpack serially: a per-session apply is microseconds, and even
        // the persistent pool's warm dispatch is not free — the two paths are
        // bit-identical anyway.
        let unpack_pool = if n >= self.pool.threads() * 4 {
            self.pool
        } else {
            ThreadPool::serial()
        };
        unpack_pool.par_chunks(&mut live_sessions, 1, |_, shard| {
            for session in shard.iter_mut() {
                session.apply_and_record();
            }
        });
        for session in &mut live_sessions {
            session.observe_feedback(policy);
        }
        n
    }

    /// Runs batched rounds until every session is exhausted.
    pub fn run_batched<P: BatchedPolicy + ?Sized>(&mut self, policy: &mut P)
    where
        E: Send,
    {
        while self.step_batched(policy) > 0 {}
    }

    /// Consumes the batch into one [`RunOutcome`] per session.
    pub fn finish(self, policies: &[BoxedPolicy]) -> Vec<RunOutcome> {
        assert_eq!(self.sessions.len(), policies.len());
        self.sessions
            .into_iter()
            .zip(policies.iter())
            .map(|(session, policy)| session.finish(policy.name()))
            .collect()
    }

    /// Consumes the batch into one [`RunOutcome`] per session, all attributed to the same
    /// shared policy — the counterpart of [`SessionBatch::step_batched`] /
    /// [`SessionBatch::run_batched`].
    pub fn finish_shared(self, policy_name: &str) -> Vec<RunOutcome> {
        self.sessions
            .into_iter()
            .map(|session| session.finish(policy_name))
            .collect()
    }

    /// Snapshots every session/policy pair: a `batch.meta` section holding the member
    /// count, then per-member `member{i}.session` / `member{i}.env` / `member{i}.policy`
    /// sections ([`Session::checkpoint_into`]). Call between [`SessionBatch::step_all`]
    /// rounds; resuming with [`SessionBatch::resume`] continues every replica
    /// bit-identically.
    pub fn checkpoint(&mut self, policies: &[BoxedPolicy]) -> crowd_ckpt::Result<Snapshot>
    where
        E: crowd_ckpt::SaveState,
    {
        assert_eq!(
            self.sessions.len(),
            policies.len(),
            "one policy per session required"
        );
        let mut snapshot = Snapshot::new();
        let mut meta = StateWriter::new();
        meta.put_usize(self.sessions.len());
        snapshot.put_raw("batch.meta", meta.into_bytes());
        for (i, (session, policy)) in self.sessions.iter_mut().zip(policies).enumerate() {
            session.checkpoint_into(policy.as_ref(), &mut snapshot, &format!("member{i}."))?;
        }
        Ok(snapshot)
    }

    /// Restores a [`SessionBatch::checkpoint`] snapshot into freshly constructed
    /// sessions and policies (same datasets, configs and construction order as the
    /// saved batch; the member count is validated against `batch.meta`).
    pub fn resume(
        &mut self,
        policies: &mut [BoxedPolicy],
        file: &SnapshotFile,
    ) -> crowd_ckpt::Result<()>
    where
        E: crowd_ckpt::LoadState,
    {
        assert_eq!(
            self.sessions.len(),
            policies.len(),
            "one policy per session required"
        );
        let mut meta = file.reader("batch.meta")?;
        let members = meta.take_usize()?;
        meta.finish("batch meta")?;
        if members != self.sessions.len() {
            return Err(CkptError::Corrupt {
                what: "session batch",
                detail: format!(
                    "snapshot holds {members} members, the live batch {}",
                    self.sessions.len()
                ),
            });
        }
        for (i, (session, policy)) in self.sessions.iter_mut().zip(policies).enumerate() {
            session.resume_sections(policy.as_mut(), file, &format!("member{i}."))?;
        }
        Ok(())
    }

    /// [`SessionBatch::checkpoint`] for the shared-policy batched-stepping flow
    /// ([`SessionBatch::step_batched`]): per-member `session`/`env` sections plus one
    /// `shared.policy` section.
    pub fn checkpoint_shared(&mut self, policy: &dyn Policy) -> crowd_ckpt::Result<Snapshot>
    where
        E: crowd_ckpt::SaveState,
    {
        let mut snapshot = Snapshot::new();
        let mut policy_bytes = StateWriter::new();
        policy.checkpoint_state(&mut policy_bytes)?;
        let mut meta = StateWriter::new();
        meta.put_usize(self.sessions.len());
        snapshot.put_raw("batch.meta", meta.into_bytes());
        snapshot.put_raw("shared.policy", policy_bytes.into_bytes());
        for (i, session) in self.sessions.iter_mut().enumerate() {
            session.env.flush();
            let mut session_bytes = StateWriter::new();
            session.save_session_state(&mut session_bytes);
            let mut env_bytes = StateWriter::new();
            session.env.save_state(&mut env_bytes);
            snapshot.put_raw(&format!("member{i}.session"), session_bytes.into_bytes());
            snapshot.put_raw(&format!("member{i}.env"), env_bytes.into_bytes());
        }
        Ok(snapshot)
    }

    /// Restores a [`SessionBatch::checkpoint_shared`] snapshot.
    pub fn resume_shared(
        &mut self,
        policy: &mut dyn Policy,
        file: &SnapshotFile,
    ) -> crowd_ckpt::Result<()>
    where
        E: crowd_ckpt::LoadState,
    {
        let mut meta = file.reader("batch.meta")?;
        let members = meta.take_usize()?;
        meta.finish("batch meta")?;
        if members != self.sessions.len() {
            return Err(CkptError::Corrupt {
                what: "session batch",
                detail: format!(
                    "snapshot holds {members} members, the live batch {}",
                    self.sessions.len()
                ),
            });
        }
        for (i, session) in self.sessions.iter_mut().enumerate() {
            let mut r = file.reader(&format!("member{i}.session"))?;
            session.load_session_state(&mut r)?;
            r.finish("session state")?;
            file.load_into(&format!("member{i}.env"), &mut session.env)?;
        }
        let mut r = file.reader("shared.policy")?;
        policy.restore_state(&mut r)?;
        r.finish("policy state")
    }
}

/// Runs several policies over the same dataset in lock-step (each against its own
/// deterministic platform replay) and returns their outcomes in order.
pub fn run_policies_lockstep(
    dataset: &Dataset,
    policies: Vec<BoxedPolicy>,
    config: &RunnerConfig,
) -> Vec<RunOutcome> {
    run_policies_lockstep_with_pool(dataset, policies, config, ThreadPool::serial())
}

/// [`run_policies_lockstep`] with the per-policy replays sharded across `pool` — each
/// policy owns its own platform replay, so the sweep parallelises over policies with
/// bit-identical outcomes at any thread count.
///
/// The pool is spent on the **outer** session sharding only; every policy keeps a serial
/// internal pool. Nested `par_*` calls made from inside a pool shard run inline on that
/// worker (see `crowd-parallel`'s "Nesting" docs), so a policy's internal pooled kernels
/// would silently degrade to serial anyway — the outer shard is the chunkier,
/// better-scaling level, and giving the inner level a serial pool makes that explicit.
/// (Nesting is still *correct* — results are bit-identical either way;
/// `tests/parallel_equivalence.rs` deliberately exercises the nested shape.)
pub fn run_policies_lockstep_with_pool(
    dataset: &Dataset,
    mut policies: Vec<BoxedPolicy>,
    config: &RunnerConfig,
    pool: ThreadPool,
) -> Vec<RunOutcome> {
    let mut batch = SessionBatch::new().with_pool(pool);
    for _ in &policies {
        batch.push(Session::for_dataset(dataset, config));
    }
    batch.run_all_parallel(&mut policies);
    batch.finish(&policies)
}
