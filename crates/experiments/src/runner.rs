//! Runner configuration, per-run outcome, and the one-shot [`run_policy`] entry point.
//!
//! The replay loop itself lives in [`crate::session`]: `run_policy` builds a [`Session`]
//! over a platform replay of the dataset, drives it to completion and returns the outcome.
//! Use [`Session`] directly to step arrival-by-arrival, or
//! [`SessionBatch`](crate::SessionBatch) to advance several simulations in lock-step —
//! per-session policies via `step_all`, or one shared `BatchedPolicy` with a single
//! batched act per round via `step_batched`.

use crate::session::Session;
use crowd_metrics::{MetricsAccumulator, MetricsSummary, UpdateTimer};
use crowd_sim::{Dataset, Policy};

/// Runner parameters.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// List length for the kCR / kQG measures (the paper uses a "top-k" list).
    pub top_k: usize,
    /// Number of initialisation months excluded from the metrics (paper: the first month).
    pub warmup_months: usize,
    /// Behaviour-model seed for the platform (fixed across policies so every method faces the
    /// same workers making the same noisy choices).
    pub platform_seed: u64,
    /// Seed of the random warmup ranking.
    pub warmup_seed: u64,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            top_k: 5,
            warmup_months: 1,
            platform_seed: 424_242,
            warmup_seed: 99,
        }
    }
}

/// Everything measured during one policy run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Policy name as reported by [`Policy::name`].
    pub policy: String,
    /// The metric accumulator with per-month breakdowns.
    pub metrics: MetricsAccumulator,
    /// Time spent in `observe` / `end_of_day` (model updates, Table I).
    pub update_timer: UpdateTimer,
    /// Time spent in `act` (decision latency).
    pub act_timer: UpdateTimer,
    /// Sum of all task qualities at the end of the run (requesters' global objective).
    pub final_total_quality: f32,
    /// Total completions over the whole run (including warmup).
    pub total_completions: usize,
    /// Number of evaluated (post-warmup) arrivals.
    pub evaluated_arrivals: usize,
}

impl RunOutcome {
    /// Convenience: the final summary of all six measures.
    pub fn summary(&self) -> MetricsSummary {
        self.metrics.summary()
    }
}

/// Replays `dataset` against `policy` with the protocol described in the crate docs.
pub fn run_policy(dataset: &Dataset, policy: &mut dyn Policy, config: &RunnerConfig) -> RunOutcome {
    let mut session = Session::for_dataset(dataset, config);
    session.run(policy);
    session.finish(policy.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{run_policies_lockstep, Session, SessionBatch};
    use crowd_baselines::{Benefit, GreedyCosine, ListMode, RandomPolicy};
    use crowd_sim::SimConfig;

    #[test]
    fn runner_evaluates_only_post_warmup_months() {
        let dataset = SimConfig::tiny().generate();
        let mut policy = RandomPolicy::new(ListMode::RankAll, 5);
        let outcome = run_policy(&dataset, &mut policy, &RunnerConfig::default());
        assert!(outcome.evaluated_arrivals > 0);
        assert!(outcome.evaluated_arrivals < dataset.n_arrivals());
        assert_eq!(outcome.metrics.timestamps(), outcome.evaluated_arrivals);
        assert_eq!(outcome.policy, "Random");
        assert!(outcome.final_total_quality > 0.0);
        assert!(outcome.total_completions > 0);
        // Update timer recorded one entry per evaluated arrival plus daily retraining hooks.
        assert!(outcome.update_timer.count() as usize >= outcome.evaluated_arrivals);
        assert_eq!(
            outcome.act_timer.count() as usize,
            outcome.evaluated_arrivals
        );
    }

    #[test]
    fn identical_seeds_give_identical_outcomes() {
        let dataset = SimConfig::tiny().generate();
        let cfg = RunnerConfig::default();
        let mut a = GreedyCosine::new(Benefit::Worker, ListMode::RankAll);
        let mut b = GreedyCosine::new(Benefit::Worker, ListMode::RankAll);
        let out_a = run_policy(&dataset, &mut a, &cfg);
        let out_b = run_policy(&dataset, &mut b, &cfg);
        assert_eq!(out_a.summary(), out_b.summary());
        assert_eq!(out_a.total_completions, out_b.total_completions);
    }

    #[test]
    fn informed_policy_beats_random_on_ndcg() {
        // Cosine similarity exploits the worker's completion history, so it should place the
        // tasks a worker likes earlier than a random ranking does.
        let dataset = SimConfig::small().generate();
        let cfg = RunnerConfig::default();
        let mut random = RandomPolicy::new(ListMode::RankAll, 1);
        let mut cosine = GreedyCosine::new(Benefit::Worker, ListMode::RankAll);
        let random_out = run_policy(&dataset, &mut random, &cfg);
        let cosine_out = run_policy(&dataset, &mut cosine, &cfg);
        assert!(
            cosine_out.summary().ndcg_cr > random_out.summary().ndcg_cr,
            "cosine {:?} vs random {:?}",
            cosine_out.summary().ndcg_cr,
            random_out.summary().ndcg_cr
        );
    }

    #[test]
    fn stepped_session_matches_one_shot_run() {
        let dataset = SimConfig::tiny().generate();
        let cfg = RunnerConfig::default();
        let mut one_shot = GreedyCosine::new(Benefit::Worker, ListMode::RankAll);
        let expected = run_policy(&dataset, &mut one_shot, &cfg);

        let mut stepped_policy = GreedyCosine::new(Benefit::Worker, ListMode::RankAll);
        let mut session = Session::for_dataset(&dataset, &cfg);
        let mut steps = 0;
        while session.step(&mut stepped_policy) {
            steps += 1;
        }
        assert!(session.is_done());
        let outcome = session.finish(stepped_policy.name());
        assert_eq!(steps, expected.evaluated_arrivals);
        assert_eq!(outcome.summary(), expected.summary());
        assert_eq!(outcome.total_completions, expected.total_completions);
    }

    #[test]
    fn partially_stepped_session_finish_commits_staged_effects() {
        let dataset = SimConfig::tiny().generate();
        let cfg = RunnerConfig::default();
        let mut policy = GreedyCosine::new(Benefit::Worker, ListMode::RankAll);
        let mut session = Session::for_dataset(&dataset, &cfg);
        // Step until an evaluated arrival completes a task; that completion is still staged
        // (it commits only on the next next_arrival), so the committed counter excludes it.
        while session.step(&mut policy) {
            if session.metrics().summary().ndcg_cr > 0.0 {
                break;
            }
        }
        assert!(
            !session.is_done(),
            "tiny dataset should complete something early"
        );
        let committed_before_finish = session.env().total_completions();
        let outcome = session.finish(policy.name());
        assert!(
            outcome.total_completions > committed_before_finish,
            "finish() must flush the staged completion ({} vs {})",
            outcome.total_completions,
            committed_before_finish
        );
    }

    #[test]
    fn session_batch_matches_individual_runs() {
        let dataset = SimConfig::tiny().generate();
        let cfg = RunnerConfig::default();

        let mut solo_random = RandomPolicy::new(ListMode::RankAll, 5);
        let solo_random_out = run_policy(&dataset, &mut solo_random, &cfg);
        let mut solo_cosine = GreedyCosine::new(Benefit::Worker, ListMode::RankAll);
        let solo_cosine_out = run_policy(&dataset, &mut solo_cosine, &cfg);

        let policies: Vec<crowd_sim::BoxedPolicy> = vec![
            Box::new(RandomPolicy::new(ListMode::RankAll, 5)),
            Box::new(GreedyCosine::new(Benefit::Worker, ListMode::RankAll)),
        ];
        let outcomes = run_policies_lockstep(&dataset, policies, &cfg);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].summary(), solo_random_out.summary());
        assert_eq!(outcomes[1].summary(), solo_cosine_out.summary());
    }

    #[test]
    fn empty_session_batch_is_a_noop() {
        let mut batch: SessionBatch = SessionBatch::new();
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        assert_eq!(batch.step_all(&mut []), 0);
        assert!(batch.finish(&[]).is_empty());
    }
}
