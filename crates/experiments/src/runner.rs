//! The replay loop shared by every experiment.

use crowd_metrics::{MetricsAccumulator, MetricsSummary, UpdateTimer};
use crowd_sim::{Action, ArrivalContext, Dataset, Platform, Policy, PolicyFeedback};
use crowd_tensor::Rng;

/// Runner parameters.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// List length for the kCR / kQG measures (the paper uses a "top-k" list).
    pub top_k: usize,
    /// Number of initialisation months excluded from the metrics (paper: the first month).
    pub warmup_months: usize,
    /// Behaviour-model seed for the platform (fixed across policies so every method faces the
    /// same workers making the same noisy choices).
    pub platform_seed: u64,
    /// Seed of the random warmup ranking.
    pub warmup_seed: u64,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            top_k: 5,
            warmup_months: 1,
            platform_seed: 424_242,
            warmup_seed: 99,
        }
    }
}

/// Everything measured during one policy run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Policy name as reported by [`Policy::name`].
    pub policy: String,
    /// The metric accumulator with per-month breakdowns.
    pub metrics: MetricsAccumulator,
    /// Time spent in `observe` / `end_of_day` (model updates, Table I).
    pub update_timer: UpdateTimer,
    /// Time spent in `act` (decision latency).
    pub act_timer: UpdateTimer,
    /// Sum of all task qualities at the end of the run (requesters' global objective).
    pub final_total_quality: f32,
    /// Total completions over the whole run (including warmup).
    pub total_completions: usize,
    /// Number of evaluated (post-warmup) arrivals.
    pub evaluated_arrivals: usize,
}

impl RunOutcome {
    /// Convenience: the final summary of all six measures.
    pub fn summary(&self) -> MetricsSummary {
        self.metrics.summary()
    }
}

/// Replays `dataset` against `policy` with the protocol described in the crate docs.
pub fn run_policy(dataset: &Dataset, policy: &mut dyn Policy, config: &RunnerConfig) -> RunOutcome {
    let features = Platform::default_feature_space(dataset);
    let mut platform = Platform::new(dataset.clone(), features, config.platform_seed);
    let mut warmup_rng = Rng::seed_from(config.warmup_seed);
    let mut metrics = MetricsAccumulator::new(config.top_k);
    let mut update_timer = UpdateTimer::new();
    let mut act_timer = UpdateTimer::new();
    let mut warmup_history: Vec<(ArrivalContext, PolicyFeedback)> = Vec::new();
    let mut warm_started = config.warmup_months == 0;
    let mut current_day: Option<usize> = None;
    let mut evaluated_arrivals = 0usize;

    while let Some(arrival) = platform.next_arrival() {
        let ctx = arrival.context;
        let month = Dataset::month_of(ctx.time);
        let day = Dataset::day_of(ctx.time);

        // End-of-day hook (supervised retraining) counts as model update time.
        if warm_started {
            if let Some(prev_day) = current_day {
                if day != prev_day {
                    update_timer.time(|| policy.end_of_day(prev_day));
                }
            }
        }
        current_day = Some(day);

        if month < config.warmup_months {
            // Initialisation window: random full-pool ranking, identical for every policy.
            if ctx.available.is_empty() {
                continue;
            }
            let mut order: Vec<_> = ctx.available.iter().map(|t| t.id).collect();
            warmup_rng.shuffle(&mut order);
            let feedback = platform.apply(&ctx, &Action::Rank(order));
            warmup_history.push((ctx, feedback));
            continue;
        }

        if !warm_started {
            policy.warm_start(&warmup_history);
            warm_started = true;
        }

        if ctx.available.is_empty() {
            continue;
        }
        let action = act_timer.time(|| policy.act(&ctx));
        let feedback = platform.apply(&ctx, &action);
        metrics.record(month - config.warmup_months, &feedback);
        evaluated_arrivals += 1;
        update_timer.time(|| policy.observe(&ctx, &feedback));
    }

    RunOutcome {
        policy: policy.name().to_string(),
        metrics,
        update_timer,
        act_timer,
        final_total_quality: platform.total_task_quality(),
        total_completions: platform.total_completions(),
        evaluated_arrivals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_baselines::{Benefit, GreedyCosine, ListMode, RandomPolicy};
    use crowd_sim::SimConfig;

    #[test]
    fn runner_evaluates_only_post_warmup_months() {
        let dataset = SimConfig::tiny().generate();
        let mut policy = RandomPolicy::new(ListMode::RankAll, 5);
        let outcome = run_policy(&dataset, &mut policy, &RunnerConfig::default());
        assert!(outcome.evaluated_arrivals > 0);
        assert!(outcome.evaluated_arrivals < dataset.n_arrivals());
        assert_eq!(outcome.metrics.timestamps(), outcome.evaluated_arrivals);
        assert_eq!(outcome.policy, "Random");
        assert!(outcome.final_total_quality > 0.0);
        assert!(outcome.total_completions > 0);
        // Update timer recorded one entry per evaluated arrival plus daily retraining hooks.
        assert!(outcome.update_timer.count() as usize >= outcome.evaluated_arrivals);
        assert_eq!(outcome.act_timer.count() as usize, outcome.evaluated_arrivals);
    }

    #[test]
    fn identical_seeds_give_identical_outcomes() {
        let dataset = SimConfig::tiny().generate();
        let cfg = RunnerConfig::default();
        let mut a = GreedyCosine::new(Benefit::Worker, ListMode::RankAll);
        let mut b = GreedyCosine::new(Benefit::Worker, ListMode::RankAll);
        let out_a = run_policy(&dataset, &mut a, &cfg);
        let out_b = run_policy(&dataset, &mut b, &cfg);
        assert_eq!(out_a.summary(), out_b.summary());
        assert_eq!(out_a.total_completions, out_b.total_completions);
    }

    #[test]
    fn informed_policy_beats_random_on_ndcg() {
        // Cosine similarity exploits the worker's completion history, so it should place the
        // tasks a worker likes earlier than a random ranking does.
        let dataset = SimConfig::small().generate();
        let cfg = RunnerConfig::default();
        let mut random = RandomPolicy::new(ListMode::RankAll, 1);
        let mut cosine = GreedyCosine::new(Benefit::Worker, ListMode::RankAll);
        let random_out = run_policy(&dataset, &mut random, &cfg);
        let cosine_out = run_policy(&dataset, &mut cosine, &cfg);
        assert!(
            cosine_out.summary().ndcg_cr > random_out.summary().ndcg_cr,
            "cosine {:?} vs random {:?}",
            cosine_out.summary().ndcg_cr,
            random_out.summary().ndcg_cr
        );
    }
}
