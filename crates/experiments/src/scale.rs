//! Experiment scale selection and the policy line-ups used by the figure binaries.

use crowd_baselines::{Benefit, GreedyCosine, GreedyNn, LinUcb, ListMode, RandomPolicy, Taskrec};
use crowd_rl_core::{DdqnAgent, DdqnConfig, RecommendationMode};
use crowd_sim::{ArrivalContext, BoxedPolicy, Dataset, Env, Platform, SimConfig};

/// Dataset scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A quick smoke-test scale (used by CI-style checks).
    Tiny,
    /// The default reduced scale that finishes on a laptop CPU in minutes.
    Small,
    /// The full CrowdSpring-replica scale of the paper (13 months, ~1700 workers).
    Replica,
    /// The demand-scale synthetic tier (~1M workers, ~240k tasks) served by the sharded
    /// platform; see [`SimConfig::massive`]. Binaries wired for it replay through
    /// [`crowd_sim::ShardedEnv`] with [`experiment_shards`] shards and skip the warm-up
    /// window (gathering owned warm-start history at this scale would dwarf the replay).
    Massive,
}

impl Scale {
    /// Parses the `CROWD_SCALE` environment variable (`tiny` / `small` / `replica` /
    /// `massive`), defaulting to [`Scale::Small`].
    pub fn from_env() -> Scale {
        match std::env::var("CROWD_SCALE")
            .unwrap_or_default()
            .to_lowercase()
            .as_str()
        {
            "tiny" => Scale::Tiny,
            "replica" | "full" => Scale::Replica,
            "massive" => Scale::Massive,
            _ => Scale::Small,
        }
    }

    /// The generator configuration for this scale.
    pub fn sim_config(self) -> SimConfig {
        match self {
            Scale::Tiny => SimConfig::tiny(),
            Scale::Small => SimConfig::small(),
            Scale::Replica => SimConfig::crowdspring_replica(),
            Scale::Massive => SimConfig::massive(),
        }
    }
}

/// Shard count for the sharded platform at the current scale: `CROWD_SHARDS` wins, then
/// a default of 8 at [`Scale::Massive`] (a demand-scale replay wants the parallel
/// per-shard advance) and 1 everywhere else (the single-shard layout is the unsharded
/// platform's, bit-identically).
pub fn experiment_shards(scale: Scale) -> usize {
    if let Ok(value) = std::env::var("CROWD_SHARDS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!(
            "CROWD_SHARDS expects a positive integer (got {value:?}); using the scale default"
        );
    }
    match scale {
        Scale::Massive => 8,
        _ => 1,
    }
}

/// Returns the experiment scale from the environment.
pub fn experiment_scale() -> Scale {
    Scale::from_env()
}

/// The worker pool for an experiment binary or example: `--threads N` on the command
/// line wins, then the `CROWD_THREADS` environment variable, then the machine's
/// available parallelism. Thread count only changes wall clock — every run is
/// bit-identical at any setting (the workspace's parallel-execution contract).
pub fn experiment_thread_pool() -> crowd_tensor::ThreadPool {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        // Both `--threads N` and `--threads=N` normalise to one value extraction.
        let value = if arg == "--threads" {
            args.next()
        } else {
            arg.strip_prefix("--threads=").map(str::to_string)
        };
        let Some(value) = value else { continue };
        match crowd_tensor::ThreadPool::parse(&value) {
            Some(pool) => return pool,
            None => eprintln!(
                "--threads expects a positive integer (got {value:?}); falling back to CROWD_THREADS / available parallelism"
            ),
        }
    }
    crowd_tensor::ThreadPool::from_env()
}

/// Generates the dataset for the current experiment scale.
pub fn experiment_dataset() -> Dataset {
    experiment_scale().sim_config().generate()
}

/// The DDQN configuration used by the experiment binaries at a given scale: the network is
/// kept narrow on the reduced scales so a full sweep stays CPU-friendly.
pub fn ddqn_config_for(scale: Scale) -> DdqnConfig {
    match scale {
        Scale::Tiny => DdqnConfig {
            hidden_dim: 16,
            num_heads: 2,
            batch_size: 8,
            learn_every: 4,
            max_tasks: 32,
            ..DdqnConfig::default()
        },
        Scale::Small => DdqnConfig {
            hidden_dim: 32,
            num_heads: 4,
            batch_size: 16,
            learn_every: 2,
            max_tasks: 48,
            ..DdqnConfig::default()
        },
        // The massive tier keeps the paper-scale network: the scale lives in the
        // sharded environment, not the model.
        Scale::Replica | Scale::Massive => DdqnConfig::paper_scale(),
    }
}

/// Builds a DDQN agent for a dataset (feature dimensions come from the platform's default
/// feature space).
pub fn ddqn_for(dataset: &Dataset, config: DdqnConfig) -> DdqnAgent {
    let features = Platform::default_feature_space(dataset);
    DdqnAgent::new(config, features.task_dim(), features.worker_dim())
}

/// Materialises up to `limit` non-empty arrival contexts from a fresh platform walk over
/// `dataset` — the owned-record arrival stream serving harnesses feed to `crowd-serve`
/// clients (the decision service takes owned [`ArrivalContext`]s over a queue, not
/// borrowed views). Deterministic in the dataset: the arrival order is the dataset's
/// prerecorded event stream, and since no decision is ever applied here, the behaviour
/// `seed` (which only drives post-`apply` feedback outcomes) cannot influence the
/// contexts. Arrivals with an empty task pool are skipped, since a serving decision over
/// zero tasks is vacuous.
pub fn collect_arrival_contexts(dataset: &Dataset, seed: u64, limit: usize) -> Vec<ArrivalContext> {
    let mut platform = Platform::new(
        dataset.clone(),
        Platform::default_feature_space(dataset),
        seed,
    );
    let mut contexts = Vec::with_capacity(limit);
    while contexts.len() < limit && platform.next_arrival() {
        let view = platform.arrival();
        if !view.is_empty() {
            contexts.push(view.to_context());
        }
    }
    contexts
}

/// The policy line-up of Fig. 7 (worker benefit) or Fig. 8 (requester benefit), including the
/// benefit-specific DDQN variant. Taskrec only appears in the worker-benefit comparison, as
/// in the paper.
pub fn policies_for_benefit(dataset: &Dataset, benefit: Benefit, scale: Scale) -> Vec<BoxedPolicy> {
    let mode = ListMode::RankAll;
    let ddqn_config = match benefit {
        Benefit::Worker => ddqn_config_for(scale).worker_only(),
        Benefit::Requester => ddqn_config_for(scale).requester_only(),
    }
    .with_mode(RecommendationMode::RankList);
    let mut policies: Vec<BoxedPolicy> = vec![Box::new(RandomPolicy::new(mode, 11))];
    if benefit == Benefit::Worker {
        policies.push(Box::new(Taskrec::new(mode, 8, 13)));
    }
    policies.push(Box::new(GreedyCosine::new(benefit, mode)));
    policies.push(Box::new(GreedyNn::new(benefit, mode, 17)));
    policies.push(Box::new(LinUcb::new(benefit, mode, 0.5)));
    policies.push(Box::new(ddqn_for(dataset, ddqn_config)));
    policies
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_defaults_to_small() {
        assert_eq!(Scale::from_env(), Scale::Small);
        assert_eq!(Scale::Tiny.sim_config().months, SimConfig::tiny().months);
        assert_eq!(
            Scale::Replica.sim_config().n_workers,
            SimConfig::crowdspring_replica().n_workers
        );
    }

    #[test]
    fn worker_lineup_matches_paper() {
        let dataset = SimConfig::tiny().generate();
        let policies = policies_for_benefit(&dataset, Benefit::Worker, Scale::Tiny);
        let names: Vec<&str> = policies.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "Random",
                "Taskrec",
                "Greedy CS",
                "Greedy NN",
                "LinUCB",
                "DDQN(w)"
            ]
        );
    }

    #[test]
    fn requester_lineup_omits_taskrec() {
        let dataset = SimConfig::tiny().generate();
        let policies = policies_for_benefit(&dataset, Benefit::Requester, Scale::Tiny);
        let names: Vec<&str> = policies.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "Random",
                "Greedy CS (r)",
                "Greedy NN (r)",
                "LinUCB (r)",
                "DDQN(r)"
            ]
        );
    }

    #[test]
    fn arrival_context_collection_is_deterministic_and_non_empty() {
        let dataset = SimConfig::tiny().generate();
        let a = collect_arrival_contexts(&dataset, 42, 25);
        let b = collect_arrival_contexts(&dataset, 42, 25);
        assert_eq!(a, b, "same seed, same stream");
        assert!(!a.is_empty());
        assert!(a.len() <= 25);
        assert!(a.iter().all(|ctx| !ctx.available.is_empty()));
        // The behaviour seed only drives post-`apply` feedback randomness; with no
        // decisions applied, the arrival stream is the dataset's event stream verbatim.
        let c = collect_arrival_contexts(&dataset, 43, 25);
        assert_eq!(a, c, "arrival stream is dataset-driven, not seed-driven");
    }

    #[test]
    fn ddqn_configs_are_valid_at_every_scale() {
        for scale in [Scale::Tiny, Scale::Small, Scale::Replica, Scale::Massive] {
            ddqn_config_for(scale).validate();
        }
    }

    #[test]
    fn massive_scale_resolves_its_generator_config() {
        assert_eq!(
            Scale::Massive.sim_config().n_workers,
            SimConfig::massive().n_workers
        );
        // Without CROWD_SHARDS the massive tier defaults to 8 shards, others to 1.
        if std::env::var_os("CROWD_SHARDS").is_none() {
            assert_eq!(experiment_shards(Scale::Massive), 8);
            assert_eq!(experiment_shards(Scale::Small), 1);
        }
    }
}
