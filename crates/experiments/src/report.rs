//! Plain-text table formatting for the experiment binaries (the repository has no plotting
//! dependency; every figure is emitted as the series of numbers that would be plotted).

/// Formats one row with a fixed column width.
pub fn format_row(cells: &[String], width: usize) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>width$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Prints a header + rows table with aligned columns.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let width = headers
        .iter()
        .map(|h| h.len())
        .chain(rows.iter().flat_map(|r| r.iter().map(|c| c.len())))
        .max()
        .unwrap_or(8)
        .max(8);
    println!("\n== {title} ==");
    println!(
        "{}",
        format_row(
            &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
            width
        )
    );
    for row in rows {
        println!("{}", format_row(row, width));
    }
}

/// Formats a float with three decimals.
pub fn f3(v: f32) -> String {
    format!("{v:.3}")
}

/// Formats a float with one decimal (quality-gain scale numbers).
pub fn f1(v: f32) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_padded_to_width() {
        let row = format_row(&["a".to_string(), "bb".to_string()], 4);
        assert_eq!(row, "   a    bb");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f1(123.456), "123.5");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "demo",
            &["method", "CR"],
            &[vec!["Random".to_string(), f3(0.1)]],
        );
    }
}
