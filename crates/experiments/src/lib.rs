//! Experiment harness: replays a synthetic dataset against any [`crowd_sim::Policy`] with the
//! paper's evaluation protocol (Sec. VII-B1) and regenerates every figure and table of the
//! evaluation section through the binaries in `src/bin/`.
//!
//! The replay loop is owned by the [`Session`] facade, which drives any policy against any
//! [`crowd_sim::Env`] through the zero-copy view interface; [`SessionBatch`] steps `N`
//! independent simulations in one call (per-session policies via
//! [`SessionBatch::step_all`], or one shared [`crowd_sim::BatchedPolicy`] deciding on every
//! live arrival in a single batched call via [`SessionBatch::step_batched`]), and
//! [`runner::run_policy`] is the one-shot convenience wrapper. `ARCHITECTURE.md` at the
//! repository root maps the whole layering, including where batched Q-network inference
//! plugs in.
//!
//! Protocol implemented by [`Session`]:
//!
//! 1. the first month of the event stream is the initialisation window: every arrival is
//!    served a random full-pool ranking, the resulting history initialises worker/task
//!    features (inside the platform) and is handed to the policy's `warm_start`;
//! 2. from month 1 on, the policy chooses an action per arrival, the cascade behaviour model
//!    produces feedback, metrics accumulate (per month and cumulatively), and the policy
//!    observes the feedback (RL methods update immediately; supervised methods retrain at the
//!    end-of-day hook);
//! 3. model update time and decision (inference) time are measured separately (Table I).

pub mod report;
pub mod runner;
pub mod scale;
pub mod scenarios;
pub mod session;

pub use report::{f1, f3, format_row, print_table};
pub use runner::{run_policy, RunOutcome, RunnerConfig};
// Shim: these lived in the (misnamed) `scenarios` module before it became the scenario
// registry; downstream bins import them from the crate root, which keeps working.
pub use scale::{
    collect_arrival_contexts, ddqn_config_for, ddqn_for, experiment_dataset, experiment_scale,
    experiment_shards, experiment_thread_pool, policies_for_benefit, Scale,
};
pub use scenarios::{
    named_scenarios, resume_scenario_session, scenario_checkpoint, scenario_dataset,
    scenario_session, scenario_session_sharded, NamedScenario,
};
pub use session::{run_policies_lockstep, run_policies_lockstep_with_pool, Session, SessionBatch};
