//! Regenerates Fig. 10 (synthetic experiments):
//! (a) CR vs worker-arrival sampling rate, (b) QG vs sampling rate,
//! (c) QG vs worker-quality noise distribution, (d) model update time vs pool size.
//!
//! Usage: `fig10_synthetic [density|quality|scalability|all]` (default: all).

use crowd_baselines::{Benefit, GreedyCosine, GreedyNn, LinUcb, ListMode, RandomPolicy};
use crowd_experiments::{
    ddqn_config_for, ddqn_for, experiment_scale, f1, f3, print_table, run_policy, RunnerConfig,
    Scale,
};
use crowd_rl_core::{DdqnAgent, DdqnConfig};
use crowd_sim::{
    perturb_worker_qualities, resample_arrivals, ArrivalContext, Dataset, Decision, Policy, TaskId,
    TaskSnapshot, WorkerId,
};
use crowd_tensor::Rng;
use std::time::Instant;

/// The synthetic-experiment policy line-up of Fig. 10(a)-(c): Random, Greedy CS, LinUCB,
/// Greedy NN and DDQN.
fn lineup(dataset: &Dataset, benefit: Benefit, scale: Scale) -> Vec<Box<dyn Policy>> {
    let mode = ListMode::RankAll;
    let ddqn_config = match benefit {
        Benefit::Worker => ddqn_config_for(scale).worker_only(),
        Benefit::Requester => ddqn_config_for(scale).requester_only(),
    };
    vec![
        Box::new(RandomPolicy::new(mode, 11)),
        Box::new(GreedyCosine::new(benefit, mode)),
        Box::new(LinUcb::new(benefit, mode, 0.5)),
        Box::new(GreedyNn::new(benefit, mode, 17)),
        Box::new(ddqn_for(dataset, ddqn_config)),
    ]
}

fn density_experiment(scale: Scale) {
    let base = scale.sim_config().generate();
    let cfg = RunnerConfig::default();
    let rates = [0.5f32, 1.0, 1.5, 2.0];
    let mut cr_rows = Vec::new();
    let mut qg_rows = Vec::new();
    for &rate in &rates {
        let mut rng = Rng::seed_from(1000 + (rate * 10.0) as u64);
        let dataset = resample_arrivals(&base, rate, &mut rng);
        let mut cr_row = vec![format!("{rate:.1}")];
        let mut qg_row = vec![format!("{rate:.1}")];
        for mut policy in lineup(&dataset, Benefit::Worker, scale) {
            eprintln!(
                "density rate {rate}: running {} (worker) ...",
                policy.name()
            );
            let outcome = run_policy(&dataset, policy.as_mut(), &cfg);
            cr_row.push(f3(outcome.summary().cr));
        }
        for mut policy in lineup(&dataset, Benefit::Requester, scale) {
            eprintln!(
                "density rate {rate}: running {} (requester) ...",
                policy.name()
            );
            let outcome = run_policy(&dataset, policy.as_mut(), &cfg);
            qg_row.push(f1(outcome.summary().qg));
        }
        cr_rows.push(cr_row);
        qg_rows.push(qg_row);
    }
    let headers = ["rate", "Random", "Greedy CS", "LinUCB", "Greedy NN", "DDQN"];
    print_table(
        "Fig 10(a): CR vs worker-arrival sampling rate",
        &headers,
        &cr_rows,
    );
    print_table(
        "Fig 10(b): QG vs worker-arrival sampling rate",
        &headers,
        &qg_rows,
    );
}

fn quality_experiment(scale: Scale) {
    let base = scale.sim_config().generate();
    let cfg = RunnerConfig::default();
    let noises = [(-0.4f32, 0.2f32), (-0.2, 0.2), (0.0, 0.2), (0.2, 0.2)];
    let mut rows = Vec::new();
    for &(mean, std) in &noises {
        let mut rng = Rng::seed_from(2000 + ((mean + 1.0) * 10.0) as u64);
        let dataset = perturb_worker_qualities(&base, mean, std, &mut rng);
        let mut row = vec![format!("N({mean:.1},{std:.1})")];
        for mut policy in lineup(&dataset, Benefit::Requester, scale) {
            eprintln!(
                "quality noise N({mean},{std}): running {} ...",
                policy.name()
            );
            let outcome = run_policy(&dataset, policy.as_mut(), &cfg);
            row.push(f1(outcome.summary().qg));
        }
        rows.push(row);
    }
    print_table(
        "Fig 10(c): QG vs worker-quality noise distribution",
        &[
            "noise",
            "Random",
            "Greedy CS",
            "LinUCB",
            "Greedy NN",
            "DDQN",
        ],
        &rows,
    );
}

/// A synthetic arrival context with `n` available tasks, used to time one model update.
fn synthetic_context(n: usize, feature_dim: usize, rng: &mut Rng) -> ArrivalContext {
    ArrivalContext {
        time: 1000,
        worker_id: WorkerId(0),
        worker_feature: (0..feature_dim).map(|_| rng.unit()).collect(),
        worker_quality: 0.7,
        is_new_worker: false,
        available: (0..n as u32)
            .map(|i| TaskSnapshot {
                id: TaskId(i),
                feature: (0..feature_dim).map(|_| rng.unit()).collect(),
                quality: rng.unit(),
                award: 50.0,
                category: 0,
                domain: 0,
                deadline: 2000 + i as u64 * 100,
                completions: 0,
            })
            .collect(),
    }
}

fn scalability_experiment() {
    // Update cost as the number of available tasks grows. The paper sweeps 10 .. 5000 on a
    // GPU; on the CPU backend we stop at 500 — the near-linear trend is already visible and
    // the larger pools only scale it up.
    let pool_sizes = [10usize, 50, 100, 500];
    let feature_dim = 20;
    let mut rows = Vec::new();
    for &n in &pool_sizes {
        let mut rng = Rng::seed_from(42);
        let ctx = synthetic_context(n, feature_dim, &mut rng);

        // LinUCB: one observe with a completion.
        let mut linucb = LinUcb::new(Benefit::Worker, ListMode::RankAll, 0.5);
        let mut decision = Decision::new();
        linucb.act(&ctx.view(), &mut decision);
        let feedback = fake_feedback(&ctx, &decision);
        let start = Instant::now();
        linucb.observe(&ctx.view(), &feedback.view());
        let linucb_time = start.elapsed().as_secs_f64();

        // DDQN: one observe (transition construction + one learning step).
        // Worker-benefit-only agent so exactly one network update is timed per observe.
        let config = DdqnConfig {
            hidden_dim: 32,
            num_heads: 4,
            batch_size: 16,
            learn_every: 1,
            buffer_size: 64,
            max_tasks: n.min(1024),
            ..DdqnConfig::default()
        }
        .worker_only();
        let mut agent = DdqnAgent::new(config.clone(), feature_dim, feature_dim);
        // Pre-fill the replay memory so the timed observe includes a full learning step.
        for _ in 0..config.batch_size + 1 {
            agent.act(&ctx.view(), &mut decision);
            let warm_feedback = fake_feedback(&ctx, &decision);
            agent.observe(&ctx.view(), &warm_feedback.view());
        }
        agent.act(&ctx.view(), &mut decision);
        let feedback = fake_feedback(&ctx, &decision);
        let start = Instant::now();
        agent.observe(&ctx.view(), &feedback.view());
        let ddqn_time = start.elapsed().as_secs_f64();

        rows.push(vec![
            n.to_string(),
            format!("{linucb_time:.4}"),
            format!("{ddqn_time:.4}"),
        ]);
    }
    print_table(
        "Fig 10(d): model update time vs number of available tasks (seconds)",
        &["# tasks", "LinUCB", "DDQN"],
        &rows,
    );
    println!("\nExpected shape: both methods scale roughly linearly in the pool size (paper Fig. 10(d)); see also `cargo bench -p crowd-bench --bench update_latency`.");
}

fn fake_feedback(ctx: &ArrivalContext, decision: &Decision) -> crowd_sim::PolicyFeedback {
    let shown = decision.shown().to_vec();
    crowd_sim::PolicyFeedback {
        time: ctx.time,
        worker_id: ctx.worker_id,
        worker_quality: ctx.worker_quality,
        completed: shown.first().map(|&t| (t, 0)),
        quality_gain: 0.3,
        worker_feature_before: ctx.worker_feature.clone(),
        worker_feature_after: ctx.worker_feature.clone(),
        shown,
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let scale = experiment_scale();
    println!("Fig. 10 reproduction — synthetic experiments ({scale:?} scale, part: {which})");
    match which.as_str() {
        "density" => density_experiment(scale),
        "quality" => quality_experiment(scale),
        "scalability" => scalability_experiment(),
        _ => {
            density_experiment(scale);
            quality_experiment(scale);
            scalability_experiment();
        }
    }
}
