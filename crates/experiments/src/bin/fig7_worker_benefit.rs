//! Regenerates Fig. 7 and its summary table: cumulative CR, kCR and nDCG-CR per month for
//! Random, Taskrec, Greedy CS, Greedy NN, LinUCB and DDQN (worker benefit only).

use crowd_baselines::Benefit;
use crowd_experiments::{
    experiment_dataset, experiment_scale, f3, policies_for_benefit, print_table, run_policy,
    RunnerConfig,
};

fn main() {
    let scale = experiment_scale();
    let dataset = experiment_dataset();
    let cfg = RunnerConfig::default();
    println!(
        "Fig. 7 reproduction — benefit of workers ({:?} scale, {} evaluated months)",
        scale,
        dataset.months.saturating_sub(cfg.warmup_months)
    );

    let mut outcomes = Vec::new();
    for mut policy in policies_for_benefit(&dataset, Benefit::Worker, scale) {
        eprintln!("running {} ...", policy.name());
        outcomes.push(run_policy(&dataset, policy.as_mut(), &cfg));
    }

    // Monthly cumulative curves (Fig. 7(a)-(c)).
    for (metric_idx, metric_name) in ["CR", "kCR", "nDCG-CR"].iter().enumerate() {
        let months = outcomes
            .iter()
            .map(|o| o.metrics.months())
            .max()
            .unwrap_or(0);
        let mut rows = Vec::new();
        for month in 0..months {
            let mut row = vec![format!("month {}", month + 1)];
            for outcome in &outcomes {
                let (cr, kcr, ndcg) = outcome.metrics.cumulative_worker_row(month);
                row.push(f3([cr, kcr, ndcg][metric_idx]));
            }
            rows.push(row);
        }
        let mut headers = vec!["month"];
        let names: Vec<String> = outcomes.iter().map(|o| o.policy.clone()).collect();
        headers.extend(names.iter().map(|s| s.as_str()));
        print_table(
            &format!("Fig 7: cumulative {metric_name} per month"),
            &headers,
            &rows,
        );
    }

    // Final summary table.
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            let s = o.summary();
            vec![o.policy.clone(), f3(s.cr), f3(s.k_cr), f3(s.ndcg_cr)]
        })
        .collect();
    print_table(
        "Fig 7 table: final worker-benefit measures",
        &["method", "CR", "kCR", "nDCG-CR"],
        &rows,
    );
}
