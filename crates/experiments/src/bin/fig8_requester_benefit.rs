//! Regenerates Fig. 8 and its summary table: per-month QG, kQG and nDCG-QG for Random,
//! Greedy CS, Greedy NN, LinUCB and DDQN (requester benefit only).

use crowd_baselines::Benefit;
use crowd_experiments::{
    experiment_dataset, experiment_scale, f1, policies_for_benefit, print_table, run_policy,
    RunnerConfig,
};

fn main() {
    let scale = experiment_scale();
    let dataset = experiment_dataset();
    let cfg = RunnerConfig::default();
    println!("Fig. 8 reproduction — benefit of requesters ({scale:?} scale)");

    let mut outcomes = Vec::new();
    for mut policy in policies_for_benefit(&dataset, Benefit::Requester, scale) {
        eprintln!("running {} ...", policy.name());
        outcomes.push(run_policy(&dataset, policy.as_mut(), &cfg));
    }

    for (metric_idx, metric_name) in ["QG", "kQG", "nDCG-QG"].iter().enumerate() {
        let months = outcomes
            .iter()
            .map(|o| o.metrics.months())
            .max()
            .unwrap_or(0);
        let mut rows = Vec::new();
        for month in 0..months {
            let mut row = vec![format!("month {}", month + 1)];
            for outcome in &outcomes {
                let (qg, kqg, ndcg) = outcome.metrics.monthly_requester_row(month);
                row.push(f1([qg, kqg, ndcg][metric_idx]));
            }
            rows.push(row);
        }
        let mut headers = vec!["month"];
        let names: Vec<String> = outcomes.iter().map(|o| o.policy.clone()).collect();
        headers.extend(names.iter().map(|s| s.as_str()));
        print_table(&format!("Fig 8: {metric_name} per month"), &headers, &rows);
    }

    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            let s = o.summary();
            vec![o.policy.clone(), f1(s.qg), f1(s.k_qg), f1(s.ndcg_qg)]
        })
        .collect();
    print_table(
        "Fig 8 table: final requester-benefit measures",
        &["method", "QG", "kQG", "nDCG-QG"],
        &rows,
    );
}
