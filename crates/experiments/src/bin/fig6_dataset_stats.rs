//! Regenerates Fig. 6: per-month counts of new and expired tasks (a), and the number of
//! worker arrivals together with the average number of available tasks seen by an arriving
//! worker (b).

use crowd_experiments::{experiment_dataset, print_table};
use crowd_sim::monthly_stats;

fn main() {
    let dataset = experiment_dataset();
    let stats = monthly_stats(&dataset);
    println!("Fig. 6 reproduction — dataset statistics per month");

    let rows_a: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                format!("month {}", s.month),
                s.new_tasks.to_string(),
                s.expired_tasks.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig 6(a): new and expired tasks",
        &["month", "# new", "# expired"],
        &rows_a,
    );

    let rows_b: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                format!("month {}", s.month),
                format!("{:.1}", s.avg_available),
                s.arrivals.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig 6(b): average available tasks and worker arrivals",
        &["month", "avg available", "# arrivals"],
        &rows_b,
    );
}
