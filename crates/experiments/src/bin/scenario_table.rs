//! Replays the full worker-benefit policy line-up (Random, Taskrec, Greedy CS,
//! Greedy NN, LinUCB, DDQN) across every registered non-stationary scenario
//! ([`crowd_experiments::named_scenarios`]) and prints per-epoch (per-month) metric
//! breakdowns plus a final cross-scenario summary.
//!
//! `CROWD_SCALE` selects the dataset tier as usual; every scenario replays the *same*
//! base dataset through its own deterministic perturbation, so columns are comparable
//! across scenarios.

use crowd_baselines::Benefit;
use crowd_experiments::{
    experiment_dataset, experiment_scale, f3, named_scenarios, policies_for_benefit, print_table,
    run_policy, RunOutcome, RunnerConfig,
};

fn main() {
    let scale = experiment_scale();
    let dataset = experiment_dataset();
    let cfg = RunnerConfig::default();
    let scenarios = named_scenarios(&dataset);
    println!(
        "Scenario table — worker benefit across {} scenarios ({:?} scale)",
        scenarios.len(),
        scale
    );

    // outcomes[scenario][policy]
    let mut all: Vec<Vec<RunOutcome>> = Vec::new();
    for scenario in &scenarios {
        eprintln!("scenario {} — {}", scenario.name, scenario.description);
        let perturbed = scenario.dataset(&dataset);
        let mut outcomes = Vec::new();
        for mut policy in policies_for_benefit(&perturbed, Benefit::Worker, scale) {
            eprintln!("  running {} ...", policy.name());
            outcomes.push(run_policy(&perturbed, policy.as_mut(), &cfg));
        }

        // Per-epoch breakdown: cumulative CR / kCR / nDCG-CR per evaluated month.
        let months = outcomes
            .iter()
            .map(|o| o.metrics.months())
            .max()
            .unwrap_or(0);
        let mut rows = Vec::new();
        for month in 0..months {
            let mut row = vec![format!("month {}", month + 1)];
            for outcome in &outcomes {
                let (cr, kcr, ndcg) = outcome.metrics.cumulative_worker_row(month);
                row.push(format!("{}/{}/{}", f3(cr), f3(kcr), f3(ndcg)));
            }
            rows.push(row);
        }
        let names: Vec<String> = outcomes.iter().map(|o| o.policy.clone()).collect();
        let mut headers = vec!["epoch"];
        headers.extend(names.iter().map(|s| s.as_str()));
        print_table(
            &format!(
                "scenario {:?}: cumulative CR/kCR/nDCG-CR per month",
                scenario.name
            ),
            &headers,
            &rows,
        );
        all.push(outcomes);
    }

    // Cross-scenario summary: one nDCG-CR row per policy, one column per scenario.
    let names: Vec<String> = all[0].iter().map(|o| o.policy.clone()).collect();
    let mut headers = vec!["method"];
    headers.extend(scenarios.iter().map(|s| s.name));
    let rows: Vec<Vec<String>> = names
        .iter()
        .enumerate()
        .map(|(p, name)| {
            let mut row = vec![name.clone()];
            for outcomes in &all {
                row.push(f3(outcomes[p].summary().ndcg_cr));
            }
            row
        })
        .collect();
    print_table("final nDCG-CR by scenario", &headers, &rows);

    let rows: Vec<Vec<String>> = names
        .iter()
        .enumerate()
        .map(|(p, name)| {
            let mut row = vec![name.clone()];
            for outcomes in &all {
                row.push(f3(outcomes[p].summary().cr));
            }
            row
        })
        .collect();
    print_table("final CR by scenario", &headers, &rows);
}
