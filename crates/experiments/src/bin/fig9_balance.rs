//! Regenerates Fig. 9: the trade-off between worker and requester benefits as the aggregator
//! weight `w` sweeps {0, 0.25, 0.5, 0.75, 1.0} (Q = w·Q_w + (1−w)·Q_r).

use crowd_experiments::{
    ddqn_config_for, ddqn_for, experiment_dataset, experiment_scale, f1, f3, print_table,
    run_policy, RunnerConfig,
};

fn main() {
    let scale = experiment_scale();
    let dataset = experiment_dataset();
    let cfg = RunnerConfig::default();
    println!("Fig. 9 reproduction — balance of benefits ({scale:?} scale)");

    let weights = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut rows = Vec::new();
    for &w in &weights {
        eprintln!("running DDQN with w = {w} ...");
        let mut agent = ddqn_for(&dataset, ddqn_config_for(scale).with_balance(w));
        let outcome = run_policy(&dataset, &mut agent, &cfg);
        let s = outcome.summary();
        rows.push(vec![
            format!("{w:.2}"),
            f3(s.cr),
            f1(s.qg),
            f3(s.k_cr),
            f1(s.k_qg),
            f3(s.ndcg_cr),
            f1(s.ndcg_qg),
        ]);
    }
    print_table(
        "Fig 9: worker vs requester benefit as the balance weight w varies",
        &["w", "CR", "QG", "kCR", "kQG", "nDCG-CR", "nDCG-QG"],
        &rows,
    );
    println!("\nThe paper finds the knee of the curve around w = 0.25: QG changes little from w=0 to 0.25 while CR changes little from 0.25 to 1.");
}
