//! Regenerates Table I: average model-update time per method (supervised methods retrain
//! daily on accumulated data; RL methods update after every feedback).

use crowd_baselines::Benefit;
use crowd_experiments::{
    experiment_dataset, experiment_scale, policies_for_benefit, print_table, run_policy,
    RunnerConfig,
};

fn main() {
    let scale = experiment_scale();
    let dataset = experiment_dataset();
    let cfg = RunnerConfig::default();
    println!("Table I reproduction — model update efficiency ({scale:?} scale)");
    println!("(Random and Greedy CS are included for completeness; the paper omits them because they have no model to update.)");

    let mut rows = Vec::new();
    for mut policy in policies_for_benefit(&dataset, Benefit::Worker, scale) {
        eprintln!("running {} ...", policy.name());
        let outcome = run_policy(&dataset, policy.as_mut(), &cfg);
        rows.push(vec![
            outcome.policy.clone(),
            format!("{:.6}", outcome.update_timer.mean_seconds()),
            format!("{:.6}", outcome.act_timer.mean_seconds()),
            outcome.update_timer.count().to_string(),
        ]);
    }
    print_table(
        "Table I: average update time per method (seconds)",
        &["method", "update (s)", "decide (s)", "# updates"],
        &rows,
    );
    println!("\nExpected shape: the daily-retrained supervised models (Taskrec, Greedy NN) pay seconds per retraining, while the RL methods (LinUCB, DDQN) update in milliseconds after every feedback.");
}
