//! Regenerates Table I: average model-update time per method (supervised methods retrain
//! daily on accumulated data; RL methods update after every feedback).

use crowd_baselines::Benefit;
use crowd_experiments::{
    experiment_dataset, experiment_scale, policies_for_benefit, print_table, run_policy,
    RunnerConfig,
};

fn main() {
    let scale = experiment_scale();
    let dataset = experiment_dataset();
    let cfg = RunnerConfig::default();
    println!("Table I reproduction — model update efficiency ({scale:?} scale)");
    println!("(Random and Greedy CS are included for completeness; the paper omits them because they have no model to update.)");

    let mut rows = Vec::new();
    for mut policy in policies_for_benefit(&dataset, Benefit::Worker, scale) {
        eprintln!("running {} ...", policy.name());
        let outcome = run_policy(&dataset, policy.as_mut(), &cfg);
        // Per-gradient-update learner wall time, for policies that track it (the DDQN
        // agent times every packed `learn` call); "-" for model-free / daily-retrained
        // methods whose whole update cost is already the observe column.
        let learn_column = match policy.learner_timing() {
            Some(timing) if timing.updates > 0 => {
                format!("{:.6}", timing.mean_seconds())
            }
            _ => "-".to_string(),
        };
        rows.push(vec![
            outcome.policy.clone(),
            format!("{:.6}", outcome.update_timer.mean_seconds()),
            format!("{:.6}", outcome.act_timer.mean_seconds()),
            learn_column,
            outcome.update_timer.count().to_string(),
        ]);
    }
    print_table(
        "Table I: average update time per method (seconds)",
        &[
            "method",
            "update (s)",
            "decide (s)",
            "learn (s)",
            "# updates",
        ],
        &rows,
    );
    println!("\nExpected shape: the daily-retrained supervised models (Taskrec, Greedy NN) pay seconds per retraining, while the RL methods (LinUCB, DDQN) update in milliseconds after every feedback.");
    println!("The learn column isolates the gradient-update slice of observe for learner-backed methods: one packed minibatch graph per DDQN update (see ARCHITECTURE.md, \"Packed minibatch training\").");
}
