//! Regenerates Table I: average model-update time per method (supervised methods retrain
//! daily on accumulated data; RL methods update after every feedback).
//!
//! Accepts `--threads N` (or `CROWD_THREADS`) and hands every policy the pool for its
//! internal parallelism — for the DDQN agent that is the concurrent two-learner dispatch
//! and the pooled packed kernels. When the pool has more than one thread, each method is
//! additionally replayed once at `threads = 1` and a wall-clock speedup column reports
//! `serial / pooled` run time (results themselves are bit-identical at any thread count,
//! so only wall clock can differ).
//!
//! # Checkpoint / resume
//!
//! Long sweeps survive kills: `--checkpoint-every N` snapshots the in-flight replay
//! every `N` evaluated arrivals (atomic rename, so a kill mid-write keeps the previous
//! snapshot) to `--checkpoint-path` (default `table1.ckpt`), together with the finished
//! methods' table rows; `--resume PATH` restores the rows and continues the interrupted
//! replay **mid-stream** — the resumed sweep's numbers are bit-identical to an
//! uninterrupted one (the contract of `tests/checkpoint_equivalence.rs`). Methods whose
//! policies do not implement checkpointing (`Policy::checkpoint_state`) run without
//! mid-replay snapshots; a policy-boundary snapshot is still written after each method
//! so a resume never repeats finished methods. The serial-twin speedup column stays
//! enabled with `--checkpoint-every` as long as no mid-replay snapshot actually fires
//! during a method's run — only when one does (so the pooled wall clock includes
//! snapshot bookkeeping the twin would not pay), or when the run is a mid-replay
//! resume's tail, is that method's speedup cell "-" (an incomparable measurement is
//! worse than no measurement).

use crowd_baselines::Benefit;
use crowd_ckpt::{CkptError, Snapshot, SnapshotFile, StateWriter};
use crowd_experiments::{
    experiment_dataset, experiment_scale, experiment_shards, policies_for_benefit, print_table,
    run_policy, RunnerConfig, Scale, Session,
};
use crowd_sim::{BoxedPolicy, Env, ShardSpec};
use crowd_tensor::ThreadPool;
use std::path::PathBuf;
use std::time::Instant;

/// Command-line checkpoint options.
struct CkptOptions {
    every: Option<usize>,
    path: PathBuf,
    resume: Option<PathBuf>,
}

impl CkptOptions {
    fn from_args() -> Self {
        let mut every = None;
        let mut path = PathBuf::from("table1.ckpt");
        let mut resume = None;
        let mut args = std::env::args().peekable();
        while let Some(arg) = args.next() {
            let mut value_of = |flag: &str| -> Option<String> {
                if arg == flag {
                    args.next()
                } else {
                    arg.strip_prefix(&format!("{flag}=")).map(str::to_string)
                }
            };
            if let Some(v) = value_of("--checkpoint-every") {
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => every = Some(n),
                    _ => eprintln!("--checkpoint-every expects a positive integer (got {v:?})"),
                }
            } else if let Some(v) = value_of("--checkpoint-path") {
                path = PathBuf::from(v);
            } else if let Some(v) = value_of("--resume") {
                resume = Some(PathBuf::from(v));
            }
        }
        CkptOptions {
            every,
            path,
            resume,
        }
    }

    fn active(&self) -> bool {
        self.every.is_some() || self.resume.is_some()
    }
}

/// The `table1.meta` section: how many methods are already finished, and their rows.
fn encode_meta(next_policy: usize, rows: &[Vec<String>]) -> Vec<u8> {
    let mut w = StateWriter::new();
    w.put_usize(next_policy);
    w.save(&rows.to_vec());
    w.into_bytes()
}

fn decode_meta(file: &SnapshotFile) -> Result<(usize, Vec<Vec<String>>), CkptError> {
    let mut r = file.reader("table1.meta")?;
    let next_policy = r.take_usize()?;
    let rows: Vec<Vec<String>> = r.decode()?;
    r.finish("table1 meta")?;
    Ok((next_policy, rows))
}

/// Writes a policy-boundary snapshot (rows only, no in-flight session).
fn write_boundary(opts: &CkptOptions, next_policy: usize, rows: &[Vec<String>]) {
    let mut snap = Snapshot::new();
    snap.put_raw("table1.meta", encode_meta(next_policy, rows));
    if let Err(e) = snap.write_to(&opts.path) {
        eprintln!("warning: could not write checkpoint: {e}");
    }
}

/// Steps one replay to completion, snapshotting every `opts.every` evaluated arrivals
/// when the policy supports it. `session` may arrive mid-replay (resume). The second
/// return says whether any mid-replay snapshot was actually attempted — when none fired
/// (short run, large `--checkpoint-every`), the measured wall clock carried no snapshot
/// bookkeeping and the serial-twin speedup comparison is still fair.
fn run_checkpointed<E: Env + crowd_ckpt::SaveState>(
    mut session: Session<E>,
    policy: &mut BoxedPolicy,
    opts: &CkptOptions,
    policy_index: usize,
    rows: &[Vec<String>],
) -> (crowd_experiments::RunOutcome, bool) {
    // `--resume` without `--checkpoint-every` is legal (finish the sweep, write no
    // further snapshots): saturate so `resumed arrivals + MAX` cannot overflow.
    let every = opts.every.unwrap_or(usize::MAX);
    let mut supported = true;
    let mut fired = false;
    let mut next_checkpoint_at = session.evaluated_arrivals().saturating_add(every);
    while session.step(policy.as_mut()) {
        if supported && session.evaluated_arrivals() >= next_checkpoint_at {
            fired = true;
            let mut snap = Snapshot::new();
            snap.put_raw("table1.meta", encode_meta(policy_index, rows));
            match session.checkpoint_into(policy.as_ref(), &mut snap, "") {
                Ok(()) => {
                    if let Err(e) = snap.write_to(&opts.path) {
                        eprintln!("warning: could not write checkpoint: {e}");
                    }
                }
                Err(CkptError::Unsupported { .. }) => {
                    eprintln!(
                        "note: {} does not support checkpointing; its replay restarts from scratch on resume",
                        policy.name()
                    );
                    supported = false;
                }
                Err(e) => eprintln!("warning: checkpoint failed: {e}"),
            }
            next_checkpoint_at = session.evaluated_arrivals().saturating_add(every);
        }
    }
    (session.finish(policy.name()), fired)
}

/// One method's replay, generic over the environment: resume the in-flight session when
/// this is the resumed method, then run it (checkpointed when requested). Returns the
/// outcome plus whether a mid-replay snapshot fired and whether the run was a resumed
/// tail — the two conditions that invalidate the serial-twin speedup comparison.
fn run_method<E: Env + crowd_ckpt::SaveState + crowd_ckpt::LoadState>(
    mut session: Session<E>,
    policy: &mut BoxedPolicy,
    opts: &CkptOptions,
    index: usize,
    first_policy: usize,
    resume_file: Option<&SnapshotFile>,
    rows: &[Vec<String>],
) -> (crowd_experiments::RunOutcome, bool, bool) {
    if !opts.active() {
        session.run(policy.as_mut());
        return (session.finish(policy.name()), false, false);
    }
    let mut resumed_mid_replay = false;
    if index == first_policy {
        if let Some(file) = resume_file.filter(|f| f.contains("session")) {
            if let Err(e) = session.resume(policy.as_mut(), file) {
                eprintln!("cannot resume the in-flight {} replay: {e}", policy.name());
                std::process::exit(1);
            }
            eprintln!(
                "  continuing mid-replay at {} evaluated arrivals",
                session.evaluated_arrivals()
            );
            resumed_mid_replay = true;
        }
    }
    let (outcome, fired) = run_checkpointed(session, policy, opts, index, rows);
    (outcome, fired, resumed_mid_replay)
}

fn main() {
    let scale = experiment_scale();
    let pool = crowd_experiments::experiment_thread_pool();
    let opts = CkptOptions::from_args();
    let dataset = experiment_dataset();
    // The massive tier replays through the sharded environment and skips the warm-up
    // window: gathering owned warm-start history over a ~1M-worker pool would dwarf
    // the replay itself.
    let shards = experiment_shards(scale);
    let cfg = if scale == Scale::Massive {
        RunnerConfig {
            warmup_months: 0,
            ..RunnerConfig::default()
        }
    } else {
        RunnerConfig::default()
    };
    println!(
        "Table I reproduction — model update efficiency ({scale:?} scale, {} thread(s))",
        pool.threads()
    );
    if scale == Scale::Massive {
        println!("(sharded environment: {shards} shard(s), no warm-up window)");
    }
    println!("(Random and Greedy CS are included for completeness; the paper omits them because they have no model to update.)");

    // Restore finished rows and locate the in-flight method when resuming.
    let (mut rows, first_policy, resume_file) = match &opts.resume {
        None => (Vec::new(), 0, None),
        Some(path) => match SnapshotFile::read(path) {
            Ok(file) => match decode_meta(&file) {
                Ok((next_policy, rows)) => {
                    println!(
                        "resuming from {}: {} finished method(s){}",
                        path.display(),
                        rows.len(),
                        if file.contains("session") {
                            ", one mid-replay"
                        } else {
                            ""
                        }
                    );
                    (rows, next_policy, Some(file))
                }
                Err(e) => {
                    eprintln!("cannot resume: {e}");
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("cannot resume from {}: {e}", path.display());
                std::process::exit(1);
            }
        },
    };

    let pooled_lineup = policies_for_benefit(&dataset, Benefit::Worker, scale);

    for (index, mut policy) in pooled_lineup.into_iter().enumerate().skip(first_policy) {
        eprintln!("running {} ...", policy.name());
        policy.set_thread_pool(pool);
        let started = Instant::now();
        let (outcome, checkpoint_fired, resumed_mid_replay) = if scale == Scale::Massive {
            let spec = ShardSpec::new(shards).with_pool(pool);
            run_method(
                Session::for_dataset_sharded(&dataset, &cfg, spec),
                &mut policy,
                &opts,
                index,
                first_policy,
                resume_file.as_ref(),
                &rows,
            )
        } else {
            run_method(
                Session::for_dataset(&dataset, &cfg),
                &mut policy,
                &opts,
                index,
                first_policy,
                resume_file.as_ref(),
                &rows,
            )
        };
        let pooled_wall = started.elapsed();

        // The serial wall-clock twin for the speedup column, built lazily only once the
        // pooled run is known to be comparable: there must be a multi-thread pool to
        // compare against, the pooled wall clock must not include snapshot bookkeeping
        // (no mid-replay snapshot fired — `--checkpoint-every` merely being set is fine),
        // and it must cover the whole replay (not a mid-replay resume's tail). The
        // massive tier skips the twin — its replay is benchmarked (shard-count sweep,
        // RSS) by `benches/sharded_scale.rs` instead of re-run twice here.
        let comparable = !pool.is_serial()
            && !checkpoint_fired
            && !resumed_mid_replay
            && scale != Scale::Massive;
        let serial_twin = if comparable {
            policies_for_benefit(&dataset, Benefit::Worker, scale)
                .into_iter()
                .nth(index)
        } else {
            None
        };
        let speedup_column = match serial_twin {
            None => "-".to_string(),
            Some(mut twin) => {
                twin.set_thread_pool(ThreadPool::serial());
                let serial_started = Instant::now();
                run_policy(&dataset, twin.as_mut(), &cfg);
                let serial_wall = serial_started.elapsed();
                format!(
                    "{:.2}x",
                    serial_wall.as_secs_f64() / pooled_wall.as_secs_f64().max(1e-9)
                )
            }
        };

        // Per-gradient-update learner wall time, for policies that track it (the DDQN
        // agent times every packed `learn` call); "-" for model-free / daily-retrained
        // methods whose whole update cost is already the observe column. With concurrent
        // learner branches the mean is taken over the CRITICAL PATH (the slower branch,
        // which is what `observe` actually waited for) — summing branch wall times would
        // double-count the overlapped span.
        let learn_column = match policy.learner_timing() {
            Some(timing) if timing.updates() > 0 => {
                let branches: Vec<String> = timing
                    .branches
                    .iter()
                    .map(|b| format!("{} {:.6}s", b.name, b.total.as_secs_f64()))
                    .collect();
                format!("{:.6} [{}]", timing.mean_seconds(), branches.join(", "))
            }
            _ => "-".to_string(),
        };
        rows.push(vec![
            outcome.policy.clone(),
            format!("{:.6}", outcome.update_timer.mean_seconds()),
            format!("{:.6}", outcome.act_timer.mean_seconds()),
            learn_column,
            outcome.update_timer.count().to_string(),
            speedup_column,
        ]);
        if opts.active() {
            // Policy boundary: finished rows survive a kill between methods.
            write_boundary(&opts, index + 1, &rows);
        }
    }
    print_table(
        "Table I: average update time per method (seconds)",
        &[
            "method",
            "update (s)",
            "decide (s)",
            "learn (s, critical path [per-branch wall])",
            "# updates",
            "speedup vs 1 thread",
        ],
        &rows,
    );
    println!("\nExpected shape: the daily-retrained supervised models (Taskrec, Greedy NN) pay seconds per retraining, while the RL methods (LinUCB, DDQN) update in milliseconds after every feedback.");
    println!("The learn column isolates the gradient-update slice of observe for learner-backed methods: one packed minibatch graph per DDQN update, with the two DDQN branches dispatched concurrently when the pool allows (see ARCHITECTURE.md, \"Parallel execution\").");
}
