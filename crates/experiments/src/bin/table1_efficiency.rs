//! Regenerates Table I: average model-update time per method (supervised methods retrain
//! daily on accumulated data; RL methods update after every feedback).
//!
//! Accepts `--threads N` (or `CROWD_THREADS`) and hands every policy the pool for its
//! internal parallelism — for the DDQN agent that is the concurrent two-learner dispatch
//! and the pooled packed kernels. When the pool has more than one thread, each method is
//! additionally replayed once at `threads = 1` and a wall-clock speedup column reports
//! `serial / pooled` run time (results themselves are bit-identical at any thread count,
//! so only wall clock can differ).

use crowd_baselines::Benefit;
use crowd_experiments::{
    experiment_dataset, experiment_scale, policies_for_benefit, print_table, run_policy,
    RunnerConfig,
};
use crowd_tensor::ThreadPool;
use std::time::Instant;

fn main() {
    let scale = experiment_scale();
    let pool = crowd_experiments::experiment_thread_pool();
    let dataset = experiment_dataset();
    let cfg = RunnerConfig::default();
    println!(
        "Table I reproduction — model update efficiency ({scale:?} scale, {} thread(s))",
        pool.threads()
    );
    println!("(Random and Greedy CS are included for completeness; the paper omits them because they have no model to update.)");

    // A second, identically constructed line-up serves as the serial wall-clock baseline
    // for the speedup column — only built when there is a multi-thread pool to compare
    // against (the twins carry full Q-networks and replay buffers).
    let pooled_lineup = policies_for_benefit(&dataset, Benefit::Worker, scale);
    let serial_twins: Vec<Option<_>> = if pool.is_serial() {
        pooled_lineup.iter().map(|_| None).collect()
    } else {
        policies_for_benefit(&dataset, Benefit::Worker, scale)
            .into_iter()
            .map(Some)
            .collect()
    };

    let mut rows = Vec::new();
    for (mut policy, serial_twin) in pooled_lineup.into_iter().zip(serial_twins) {
        eprintln!("running {} ...", policy.name());
        policy.set_thread_pool(pool);
        let started = Instant::now();
        let outcome = run_policy(&dataset, policy.as_mut(), &cfg);
        let pooled_wall = started.elapsed();

        let speedup_column = match serial_twin {
            None => "-".to_string(),
            Some(mut twin) => {
                twin.set_thread_pool(ThreadPool::serial());
                let serial_started = Instant::now();
                run_policy(&dataset, twin.as_mut(), &cfg);
                let serial_wall = serial_started.elapsed();
                format!(
                    "{:.2}x",
                    serial_wall.as_secs_f64() / pooled_wall.as_secs_f64().max(1e-9)
                )
            }
        };

        // Per-gradient-update learner wall time, for policies that track it (the DDQN
        // agent times every packed `learn` call); "-" for model-free / daily-retrained
        // methods whose whole update cost is already the observe column. With concurrent
        // learner branches the mean is taken over the CRITICAL PATH (the slower branch,
        // which is what `observe` actually waited for) — summing branch wall times would
        // double-count the overlapped span.
        let learn_column = match policy.learner_timing() {
            Some(timing) if timing.updates() > 0 => {
                let branches: Vec<String> = timing
                    .branches
                    .iter()
                    .map(|b| format!("{} {:.6}s", b.name, b.total.as_secs_f64()))
                    .collect();
                format!("{:.6} [{}]", timing.mean_seconds(), branches.join(", "))
            }
            _ => "-".to_string(),
        };
        rows.push(vec![
            outcome.policy.clone(),
            format!("{:.6}", outcome.update_timer.mean_seconds()),
            format!("{:.6}", outcome.act_timer.mean_seconds()),
            learn_column,
            outcome.update_timer.count().to_string(),
            speedup_column,
        ]);
    }
    print_table(
        "Table I: average update time per method (seconds)",
        &[
            "method",
            "update (s)",
            "decide (s)",
            "learn (s, critical path [per-branch wall])",
            "# updates",
            "speedup vs 1 thread",
        ],
        &rows,
    );
    println!("\nExpected shape: the daily-retrained supervised models (Taskrec, Greedy NN) pay seconds per retraining, while the RL methods (LinUCB, DDQN) update in milliseconds after every feedback.");
    println!("The learn column isolates the gradient-update slice of observe for learner-backed methods: one packed minibatch graph per DDQN update, with the two DDQN branches dispatched concurrently when the pool allows (see ARCHITECTURE.md, \"Parallel execution\").");
}
