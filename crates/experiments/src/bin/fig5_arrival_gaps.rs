//! Regenerates Fig. 5: histograms of the time gap between consecutive worker arrivals —
//! (a) same worker, 0–180 minutes; (b) same worker, 0–7 days; (c) any workers, 0–210 minutes.

use crowd_experiments::{experiment_dataset, print_table};
use crowd_sim::{consecutive_arrival_gap_histogram, same_worker_gap_histogram};

fn main() {
    let dataset = experiment_dataset();
    println!(
        "Fig. 5 reproduction — arrival-gap histograms ({} arrivals)",
        dataset.n_arrivals()
    );

    // (a) same worker, 0-180 minutes, 10-minute bins.
    let a = same_worker_gap_histogram(&dataset, 10, 180);
    let rows: Vec<Vec<String>> = a
        .counts
        .iter()
        .enumerate()
        .map(|(i, &c)| vec![format!("{}-{}", i * 10, (i + 1) * 10), c.to_string()])
        .collect();
    print_table(
        "Fig 5(a): same-worker gap, 0-180 min",
        &["gap (min)", "# arrivals"],
        &rows,
    );

    // (b) same worker, 0-7 days, 1-day bins.
    let b = same_worker_gap_histogram(&dataset, 1440, 7 * 1440);
    let rows: Vec<Vec<String>> = b
        .counts
        .iter()
        .enumerate()
        .map(|(i, &c)| vec![format!("day {}-{}", i, i + 1), c.to_string()])
        .collect();
    print_table(
        "Fig 5(b): same-worker gap, 0-7 days",
        &["gap", "# arrivals"],
        &rows,
    );

    // (c) consecutive arrivals (any worker), 0-210 minutes, 10-minute bins.
    let c = consecutive_arrival_gap_histogram(&dataset, 10, 210);
    let rows: Vec<Vec<String>> = c
        .counts
        .iter()
        .enumerate()
        .map(|(i, &cnt)| vec![format!("{}-{}", i * 10, (i + 1) * 10), cnt.to_string()])
        .collect();
    print_table(
        "Fig 5(c): consecutive-arrival gap (any workers), 0-210 min",
        &["gap (min)", "# arrivals"],
        &rows,
    );
    println!(
        "\nShape check: {:.1}% of consecutive gaps fall under 60 minutes (paper: ~99% on CrowdSpring).",
        100.0 * consecutive_arrival_gap_histogram(&dataset, 10, 100_000).fraction_below(60)
    );
}
