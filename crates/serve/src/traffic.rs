//! Deterministic arrival-time generators for load tests and latency benches.
//!
//! The serving benches need traffic shapes, not just counts: a Poisson stream probes
//! steady-state micro-batch occupancy, while a bursty (Markov-modulated Poisson)
//! stream probes how the bounded ingress queue and the batch window absorb spikes.
//! Both are driven by the workspace [`Rng`] so a seed fully determines the schedule —
//! two bench runs at the same seed replay the same arrival offsets.
//!
//! Rates are expressed in **arrivals per second**. The ISSUE's "millions of arrivals
//! per day" regime is ~12–60 arrivals/second sustained (1M/day ≈ 11.6/s), which the
//! benches scale up from; the generators themselves are happy at any rate.

use crowd_tensor::Rng;
use std::time::Duration;

/// The traffic shapes the load generator understands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficPattern {
    /// Homogeneous Poisson arrivals: independent exponential gaps at `rate`/second.
    Poisson {
        /// Mean arrival rate in arrivals per second.
        rate: f64,
    },
    /// A two-phase Markov-modulated Poisson process: the stream alternates between a
    /// quiet phase at `base_rate` and a burst phase at `burst_rate`, with
    /// exponentially distributed phase durations. This is the classic bursty-traffic
    /// model — the mean rate is a duty-cycle blend, but short windows see the full
    /// burst rate, which is what stresses the queue.
    Bursty {
        /// Arrival rate during quiet phases, per second.
        base_rate: f64,
        /// Arrival rate during bursts, per second.
        burst_rate: f64,
        /// Mean burst duration in seconds.
        mean_burst_secs: f64,
        /// Mean quiet-phase duration in seconds.
        mean_quiet_secs: f64,
    },
}

impl TrafficPattern {
    /// The long-run mean arrival rate of this pattern, per second.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            TrafficPattern::Poisson { rate } => rate,
            TrafficPattern::Bursty {
                base_rate,
                burst_rate,
                mean_burst_secs,
                mean_quiet_secs,
            } => {
                let cycle = mean_burst_secs + mean_quiet_secs;
                if cycle <= 0.0 {
                    base_rate.max(burst_rate)
                } else {
                    (burst_rate * mean_burst_secs + base_rate * mean_quiet_secs) / cycle
                }
            }
        }
    }

    /// Short label for bench output (`"poisson"` / `"bursty"`).
    pub fn label(&self) -> &'static str {
        match self {
            TrafficPattern::Poisson { .. } => "poisson",
            TrafficPattern::Bursty { .. } => "bursty",
        }
    }
}

/// Which phase a bursty schedule is currently in.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Quiet { until: f64 },
    Burst { until: f64 },
}

/// A deterministic stream of arrival instants for one traffic pattern.
///
/// [`ArrivalSchedule::next_offset`] returns each arrival's offset from the stream
/// start; [`Iterator::next`] yields the same thing as a [`Duration`]. The schedule is
/// a pure function of `(pattern, seed)`.
#[derive(Debug, Clone)]
pub struct ArrivalSchedule {
    pattern: TrafficPattern,
    rng: Rng,
    /// Current time cursor, seconds from stream start.
    now: f64,
    /// Bursty-phase state; `None` for Poisson.
    phase: Option<Phase>,
}

impl ArrivalSchedule {
    /// Builds the schedule; the same `(pattern, seed)` pair always replays the same
    /// arrival instants.
    pub fn new(pattern: TrafficPattern, seed: u64) -> ArrivalSchedule {
        ArrivalSchedule {
            pattern,
            rng: Rng::seed_from(seed ^ 0xC0FF_EE00_5E17_AB1E),
            now: 0.0,
            phase: None,
        }
    }

    /// The pattern this schedule samples.
    pub fn pattern(&self) -> TrafficPattern {
        self.pattern
    }

    /// Advances to the next arrival and returns its offset from the stream start, in
    /// seconds. Offsets are non-decreasing.
    pub fn next_offset(&mut self) -> f64 {
        match self.pattern {
            TrafficPattern::Poisson { rate } => {
                self.now += self.gap(rate);
            }
            TrafficPattern::Bursty {
                base_rate,
                burst_rate,
                mean_burst_secs,
                mean_quiet_secs,
            } => {
                // Walk phase boundaries until a gap sampled at the current phase's
                // rate lands inside the phase (thinning-free MMPP sampling: the
                // exponential's memorylessness lets us restart the draw at each
                // boundary).
                loop {
                    let phase = match self.phase {
                        Some(p) => p,
                        None => {
                            let until = self.now + self.duration(mean_quiet_secs);
                            let p = Phase::Quiet { until };
                            self.phase = Some(p);
                            p
                        }
                    };
                    let (rate, until) = match phase {
                        Phase::Quiet { until } => (base_rate, until),
                        Phase::Burst { until } => (burst_rate, until),
                    };
                    let candidate = self.now + self.gap(rate);
                    if candidate <= until {
                        self.now = candidate;
                        break;
                    }
                    // No arrival before the phase flips; jump to the boundary and
                    // re-sample in the next phase.
                    self.now = until;
                    self.phase = Some(match phase {
                        Phase::Quiet { .. } => Phase::Burst {
                            until: self.now + self.duration(mean_burst_secs),
                        },
                        Phase::Burst { .. } => Phase::Quiet {
                            until: self.now + self.duration(mean_quiet_secs),
                        },
                    });
                }
            }
        }
        self.now
    }

    /// The first `n` arrival offsets, in seconds — convenience for open-loop load
    /// generators that pre-compute their schedule.
    pub fn take_offsets(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_offset()).collect()
    }

    /// An exponential inter-arrival gap at `rate`/second (guarded against a zero or
    /// negative rate, which would stall the stream forever).
    fn gap(&mut self, rate: f64) -> f64 {
        let rate = rate.max(1e-9);
        // The tensor Rng is f32; split the draw so the gap keeps f64 headroom at high
        // rates (an f32 gap at 1e6/s has only ~1e-13 s of resolution left).
        f64::from(self.rng.exponential(1.0)) / rate
    }

    /// An exponential phase duration with the given mean, in seconds.
    fn duration(&mut self, mean_secs: f64) -> f64 {
        f64::from(self.rng.exponential(1.0)) * mean_secs.max(1e-9)
    }
}

impl Iterator for ArrivalSchedule {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        Some(Duration::from_secs_f64(self.next_offset()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_monotonic() {
        let pattern = TrafficPattern::Poisson { rate: 50.0 };
        let a = ArrivalSchedule::new(pattern, 7).take_offsets(500);
        let b = ArrivalSchedule::new(pattern, 7).take_offsets(500);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "offsets non-decreasing");
        let c = ArrivalSchedule::new(pattern, 8).take_offsets(500);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn poisson_mean_rate_is_roughly_right() {
        let rate = 200.0;
        let n = 20_000;
        let last = ArrivalSchedule::new(TrafficPattern::Poisson { rate }, 42)
            .take_offsets(n)
            .pop()
            .unwrap();
        let empirical = n as f64 / last;
        assert!(
            (empirical - rate).abs() / rate < 0.05,
            "empirical rate {empirical:.1} too far from {rate}"
        );
    }

    #[test]
    fn bursty_blends_the_two_rates() {
        let pattern = TrafficPattern::Bursty {
            base_rate: 20.0,
            burst_rate: 400.0,
            mean_burst_secs: 0.5,
            mean_quiet_secs: 2.0,
        };
        let n = 40_000;
        let offsets = ArrivalSchedule::new(pattern, 3).take_offsets(n);
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        let empirical = n as f64 / offsets.last().unwrap();
        let mean = pattern.mean_rate();
        assert!(
            (empirical - mean).abs() / mean < 0.15,
            "empirical rate {empirical:.1} too far from blended mean {mean:.1}"
        );
        // And it actually bursts: the densest 1-second window should far exceed the
        // blended mean.
        let mut peak = 0usize;
        let mut lo = 0usize;
        for hi in 0..offsets.len() {
            while offsets[hi] - offsets[lo] > 1.0 {
                lo += 1;
            }
            peak = peak.max(hi - lo + 1);
        }
        assert!(
            peak as f64 > 2.0 * mean,
            "densest second ({peak}) should dwarf the mean rate ({mean:.1})"
        );
    }

    #[test]
    fn mean_rate_formula() {
        assert_eq!(TrafficPattern::Poisson { rate: 9.0 }.mean_rate(), 9.0);
        let b = TrafficPattern::Bursty {
            base_rate: 10.0,
            burst_rate: 100.0,
            mean_burst_secs: 1.0,
            mean_quiet_secs: 3.0,
        };
        assert!((b.mean_rate() - 32.5).abs() < 1e-9);
        assert_eq!(b.label(), "bursty");
    }

    #[test]
    fn iterator_yields_durations() {
        let mut s = ArrivalSchedule::new(TrafficPattern::Poisson { rate: 100.0 }, 1);
        let d: Vec<Duration> = s.by_ref().take(3).collect();
        assert_eq!(d.len(), 3);
        assert!(d[0] <= d[1] && d[1] <= d[2]);
    }
}
