//! The durable decision log: typed records over the `crowd-ckpt` WAL framing.
//!
//! Every committed serving round appends **one record batch** (group commit): first the
//! round's feedback records in ingress order (feedbacks are observed before the round's
//! decisions — see `crowd_serve::server`), then its decision records in commit order.
//! The byte format
//! is specified in `docs/DECISION_LOG_FORMAT.md` at the repository root; the segment
//! framing (magic, version, CRC-32 per batch, atomic rotation, torn-tail detection)
//! lives in [`crowd_ckpt::wal`], and this module owns what goes *inside* a batch.
//!
//! A record stores everything deterministic re-execution needs and nothing more: the
//! full [`ArrivalContext`] a decision was made on (so replay can call the policy again
//! and check it reproduces the logged ranking) and the full [`PolicyFeedback`] of every
//! ingested online-learning tick. The policy's parameters are **never** logged — they
//! are a pure function of the initial state plus the logged event order, which is
//! exactly what makes a crashed server's replay bit-identical to the uninterrupted run.

use crate::error::{Result, ServeError};
use crowd_ckpt::wal::{self, SegmentWriter};
use crowd_ckpt::{CkptError, DecodeState, SaveState, StateReader, StateWriter};
use crowd_sim::{ArrivalContext, PolicyFeedback, TaskId};
use std::path::{Path, PathBuf};

/// Record tag: a committed decision (request id, arrival context, ranking).
const TAG_DECISION: u8 = 1;
/// Record tag: an ingested feedback (request id, feedback payload).
const TAG_FEEDBACK: u8 = 2;

/// One committed serving event, in the log's total commit order.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// The server decided on an arrival: `shown`/`assignment` is the ranking the policy
    /// produced for `context` and acknowledged to the client as request `request_id`.
    Decision {
        /// Server-assigned id, strictly increasing in commit order.
        request_id: u64,
        /// The owned arrival the decision was computed on.
        context: ArrivalContext,
        /// The ranked task list returned to the client.
        shown: Vec<TaskId>,
        /// True when the decision was a single assignment rather than a ranking.
        assignment: bool,
    },
    /// The server ingested feedback for an earlier decision and ticked the policy's
    /// online learning (`Policy::observe`).
    Feedback {
        /// The decision this feedback refers to.
        request_id: u64,
        /// The feedback payload handed to `observe`.
        feedback: PolicyFeedback,
    },
}

impl SaveState for LogRecord {
    fn save_state(&self, w: &mut StateWriter) {
        match self {
            LogRecord::Decision {
                request_id,
                context,
                shown,
                assignment,
            } => {
                w.put_u8(TAG_DECISION);
                w.put_u64(*request_id);
                context.save_state(w);
                shown.save_state(w);
                w.put_bool(*assignment);
            }
            LogRecord::Feedback {
                request_id,
                feedback,
            } => {
                w.put_u8(TAG_FEEDBACK);
                w.put_u64(*request_id);
                feedback.save_state(w);
            }
        }
    }
}

impl DecodeState for LogRecord {
    fn decode_state(r: &mut StateReader<'_>) -> crowd_ckpt::Result<Self> {
        match r.take_u8()? {
            TAG_DECISION => Ok(LogRecord::Decision {
                request_id: r.take_u64()?,
                context: ArrivalContext::decode_state(r)?,
                shown: Vec::<TaskId>::decode_state(r)?,
                assignment: r.take_bool()?,
            }),
            TAG_FEEDBACK => Ok(LogRecord::Feedback {
                request_id: r.take_u64()?,
                feedback: PolicyFeedback::decode_state(r)?,
            }),
            tag => Err(CkptError::Corrupt {
                what: "decision log record",
                detail: format!("unknown record tag {tag}"),
            }),
        }
    }
}

impl LogRecord {
    /// The request id this record refers to.
    pub fn request_id(&self) -> u64 {
        match self {
            LogRecord::Decision { request_id, .. } | LogRecord::Feedback { request_id, .. } => {
                *request_id
            }
        }
    }
}

/// Encodes one committed round as a record-batch payload (`record count` then the
/// records back to back).
pub fn encode_batch(records: &[LogRecord]) -> Vec<u8> {
    let mut w = StateWriter::new();
    w.put_usize(records.len());
    for record in records {
        record.save_state(&mut w);
    }
    w.into_bytes()
}

/// Decodes one record-batch payload, enforcing exact consumption.
pub fn decode_batch(payload: &[u8]) -> crowd_ckpt::Result<Vec<LogRecord>> {
    let mut r = StateReader::new(payload);
    let count = r.take_len("decision log records", 1)?;
    let records = (0..count)
        .map(|_| LogRecord::decode_state(&mut r))
        .collect::<crowd_ckpt::Result<Vec<_>>>()?;
    r.finish("decision log record batch")?;
    Ok(records)
}

/// Where and how durably the decision log is written.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Rotation threshold: a new segment is opened before the first append that finds
    /// the current one at or past this many bytes. A segment therefore always holds at
    /// least one batch, whatever the threshold.
    pub segment_bytes: u64,
    /// `fdatasync` after every appended batch (the default). The server acknowledges a
    /// round's clients only after the append returns, so with this on an acknowledged
    /// decision is durable — the contract recovery relies on. Turning it off trades
    /// that guarantee for throughput (the OS flushes on its own schedule).
    pub sync_every_batch: bool,
}

impl LogConfig {
    /// A log in `dir` with an 8 MiB rotation threshold and per-batch sync.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        LogConfig {
            dir: dir.into(),
            segment_bytes: 8 * 1024 * 1024,
            sync_every_batch: true,
        }
    }
}

/// What `DecisionLog::recover` found and repaired on disk.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LogRecovery {
    /// Segments present (after ignoring `.tmp` leftovers).
    pub segments: usize,
    /// Complete, CRC-verified record batches replayed.
    pub batches: usize,
    /// Bytes of torn tail truncated off the final segment (0 for a clean log). A torn
    /// tail was never acknowledged to any client, so dropping it loses nothing.
    pub truncated_bytes: u64,
    /// Leftover `.tmp` files from an interrupted segment rotation, deleted.
    pub removed_tmp: usize,
}

/// The append side of the durable decision log.
#[derive(Debug)]
pub struct DecisionLog {
    config: LogConfig,
    writer: SegmentWriter,
    batches: u64,
    rotations: u64,
}

impl DecisionLog {
    /// Creates a fresh log: the directory is created if needed, stale `.tmp` files are
    /// removed, and segment 0 is opened. Fails with [`ServeError::LogNotEmpty`] when
    /// segments already exist — appending a fresh history over an old one would fork
    /// the log; use [`DecisionLog::recover`] to continue it instead.
    pub fn create(config: LogConfig) -> Result<DecisionLog> {
        std::fs::create_dir_all(&config.dir)?;
        let scan = wal::scan_dir(&config.dir)?;
        if !scan.segments.is_empty() {
            return Err(ServeError::LogNotEmpty {
                dir: config.dir.clone(),
            });
        }
        for tmp in &scan.tmp_files {
            let _ = std::fs::remove_file(tmp);
        }
        let writer = SegmentWriter::create(&config.dir, 0)?;
        Ok(DecisionLog {
            config,
            writer,
            batches: 0,
            rotations: 0,
        })
    }

    /// Opens an existing log for appending, returning every committed record in commit
    /// order plus what was repaired: `.tmp` rotation leftovers are deleted, a torn tail
    /// on the **final** segment is truncated away (it was never acknowledged), and a
    /// torn tail on any *sealed* (non-final) segment is an error — those bytes were
    /// synced before the next segment opened, so damage there is real corruption that
    /// replay must not paper over. An empty or absent directory recovers to a fresh log.
    pub fn recover(config: LogConfig) -> Result<(DecisionLog, Vec<LogRecord>, LogRecovery)> {
        std::fs::create_dir_all(&config.dir)?;
        let scan = wal::scan_dir(&config.dir)?;
        let mut recovery = LogRecovery::default();
        for tmp in &scan.tmp_files {
            std::fs::remove_file(tmp)?;
            recovery.removed_tmp += 1;
        }
        if scan.segments.is_empty() {
            let writer = SegmentWriter::create(&config.dir, 0)?;
            let log = DecisionLog {
                config,
                writer,
                batches: 0,
                rotations: 0,
            };
            return Ok((log, Vec::new(), recovery));
        }
        recovery.segments = scan.segments.len();
        let records = read_segments(&scan.segments, &mut recovery)?;
        let (last_index, last_path) = scan.segments.last().expect("non-empty");
        let last = wal::read_segment(last_path)?;
        let writer = SegmentWriter::resume(last_path, *last_index, last.clean_len)?;
        let rotations = *last_index;
        let batches = recovery.batches as u64;
        let log = DecisionLog {
            config,
            writer,
            batches,
            rotations,
        };
        Ok((log, records, recovery))
    }

    /// Read-only scan of a log directory (tests, offline tooling): the committed
    /// records in commit order, with the same torn-tail policy as
    /// [`DecisionLog::recover`] but touching nothing on disk.
    pub fn read(dir: &Path) -> Result<Vec<LogRecord>> {
        let scan = wal::scan_dir(dir)?;
        let mut recovery = LogRecovery::default();
        read_segments(&scan.segments, &mut recovery)
    }

    /// Appends one committed round as a single record batch, rotating to a new segment
    /// first when the current one is past the threshold. With
    /// [`LogConfig::sync_every_batch`] the batch is durable when this returns.
    pub fn append(&mut self, records: &[LogRecord]) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        if self.writer.len() >= self.config.segment_bytes && !self.writer.is_empty() {
            // Seal the full segment (make its tail durable), then rotate atomically.
            self.writer.sync()?;
            let next = self.writer.index() + 1;
            self.writer = SegmentWriter::create(&self.config.dir, next)?;
            self.rotations += 1;
        }
        self.writer.append(&encode_batch(records))?;
        if self.config.sync_every_batch {
            self.writer.sync()?;
        }
        self.batches += 1;
        Ok(())
    }

    /// Forces everything appended so far to disk (used at graceful shutdown and by
    /// callers running with `sync_every_batch` off).
    pub fn sync(&mut self) -> Result<()> {
        self.writer.sync()?;
        Ok(())
    }

    /// Record batches appended over this log's whole on-disk history.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Segment rotations performed over this log's whole on-disk history.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }
}

/// Decodes every committed record of the given segments in order, enforcing the
/// torn-tail policy (only the final segment may be torn).
fn read_segments(
    segments: &[(u64, PathBuf)],
    recovery: &mut LogRecovery,
) -> Result<Vec<LogRecord>> {
    let mut records = Vec::new();
    let last_pos = segments.len().saturating_sub(1);
    for (pos, (index, path)) in segments.iter().enumerate() {
        let segment = wal::read_segment(path)?;
        if segment.index != *index {
            return Err(ServeError::Log {
                detail: format!(
                    "{} claims segment index {} in its header",
                    path.display(),
                    segment.index
                ),
            });
        }
        if segment.is_torn() {
            if pos != last_pos {
                return Err(ServeError::Log {
                    detail: format!(
                        "sealed segment {} has a torn tail ({} bytes) — corruption, not a crash artifact",
                        path.display(),
                        segment.torn_bytes
                    ),
                });
            }
            recovery.truncated_bytes = segment.torn_bytes;
        }
        recovery.batches += segment.batches.len();
        for payload in &segment.batches {
            records.extend(decode_batch(payload)?);
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::{TaskSnapshot, WorkerId};

    fn context(tag: u32) -> ArrivalContext {
        ArrivalContext {
            time: 100 + tag as u64,
            worker_id: WorkerId(tag),
            worker_feature: vec![0.5, tag as f32],
            worker_quality: 0.75,
            is_new_worker: tag == 0,
            available: (0..3)
                .map(|i| TaskSnapshot {
                    id: TaskId(10 * tag + i),
                    feature: vec![i as f32, 1.0],
                    quality: 0.25 * i as f32,
                    award: 9.0,
                    category: 1,
                    domain: 2,
                    deadline: 500,
                    completions: i as usize,
                })
                .collect(),
        }
    }

    fn feedback(tag: u32) -> PolicyFeedback {
        PolicyFeedback {
            time: 100 + tag as u64,
            worker_id: WorkerId(tag),
            worker_quality: 0.75,
            shown: vec![TaskId(10 * tag), TaskId(10 * tag + 1)],
            completed: Some((TaskId(10 * tag), 0)),
            quality_gain: 0.125,
            worker_feature_before: vec![0.5, tag as f32],
            worker_feature_after: vec![0.25, tag as f32],
        }
    }

    fn sample_records(n: u32) -> Vec<LogRecord> {
        (0..n)
            .flat_map(|tag| {
                [
                    LogRecord::Decision {
                        request_id: 2 * tag as u64,
                        context: context(tag),
                        shown: vec![TaskId(10 * tag + 1), TaskId(10 * tag)],
                        assignment: tag % 2 == 0,
                    },
                    LogRecord::Feedback {
                        request_id: 2 * tag as u64,
                        feedback: feedback(tag),
                    },
                ]
            })
            .collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("crowd-declog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn record_batch_roundtrips() {
        let records = sample_records(3);
        let payload = encode_batch(&records);
        assert_eq!(decode_batch(&payload).unwrap(), records);
        assert!(decode_batch(&payload[..payload.len() - 1]).is_err());
        let mut bad = payload.clone();
        bad[8] = 99; // first record tag
        assert!(matches!(decode_batch(&bad), Err(CkptError::Corrupt { .. })));
    }

    #[test]
    fn create_append_read_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut log = DecisionLog::create(LogConfig::new(&dir)).unwrap();
        let records = sample_records(2);
        log.append(&records[..2]).unwrap();
        log.append(&records[2..]).unwrap();
        log.append(&[]).unwrap(); // no-op, not a batch
        assert_eq!(log.batches(), 2);
        assert_eq!(DecisionLog::read(&dir).unwrap(), records);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_an_existing_history() {
        let dir = tmp_dir("not-empty");
        let mut log = DecisionLog::create(LogConfig::new(&dir)).unwrap();
        log.append(&sample_records(1)).unwrap();
        drop(log);
        assert!(matches!(
            DecisionLog::create(LogConfig::new(&dir)),
            Err(ServeError::LogNotEmpty { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiny_threshold_rotates_per_batch_and_recovers_across_segments() {
        let dir = tmp_dir("rotate");
        let mut config = LogConfig::new(&dir);
        config.segment_bytes = 1; // every append past the first batch rotates
        let mut log = DecisionLog::create(config.clone()).unwrap();
        let records = sample_records(4);
        for pair in records.chunks(2) {
            log.append(pair).unwrap();
        }
        assert_eq!(log.rotations(), 3);
        drop(log);

        let (log, replayed, recovery) = DecisionLog::recover(config).unwrap();
        assert_eq!(replayed, records);
        assert_eq!(recovery.segments, 4);
        assert_eq!(recovery.batches, 4);
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(log.rotations(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_truncates_only_a_final_torn_tail() {
        let dir = tmp_dir("torn");
        let mut log = DecisionLog::create(LogConfig::new(&dir)).unwrap();
        let records = sample_records(2);
        log.append(&records[..2]).unwrap();
        log.append(&records[2..]).unwrap();
        drop(log);
        // Tear the final batch: chop a few payload bytes off the single segment.
        let seg = dir.join(wal::segment_file_name(0));
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();

        let (mut log, replayed, recovery) = DecisionLog::recover(LogConfig::new(&dir)).unwrap();
        assert_eq!(replayed, records[..2].to_vec());
        assert!(recovery.truncated_bytes > 0);
        // The log continues cleanly after the truncation.
        log.append(&records[2..]).unwrap();
        drop(log);
        assert_eq!(DecisionLog::read(&dir).unwrap(), records);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_rejects_a_torn_sealed_segment() {
        let dir = tmp_dir("sealed");
        let mut config = LogConfig::new(&dir);
        config.segment_bytes = 1;
        let mut log = DecisionLog::create(config.clone()).unwrap();
        let records = sample_records(2);
        log.append(&records[..2]).unwrap();
        log.append(&records[2..]).unwrap(); // rotates: segment 0 is now sealed
        drop(log);
        let seg0 = dir.join(wal::segment_file_name(0));
        let bytes = std::fs::read(&seg0).unwrap();
        std::fs::write(&seg0, &bytes[..bytes.len() - 1]).unwrap();
        assert!(matches!(
            DecisionLog::recover(config),
            Err(ServeError::Log { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_removes_rotation_leftovers_and_fresh_dir_is_empty() {
        let dir = tmp_dir("tmp-files");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("segment-00000000.wlog.tmp"), b"half a header").unwrap();
        let (mut log, records, recovery) = DecisionLog::recover(LogConfig::new(&dir)).unwrap();
        assert!(records.is_empty());
        assert_eq!(recovery.removed_tmp, 1);
        assert_eq!(recovery.segments, 0);
        log.append(&sample_records(1)).unwrap();
        drop(log);
        assert_eq!(DecisionLog::read(&dir).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
