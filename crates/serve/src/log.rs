//! The durable decision log: typed records over the `crowd-ckpt` WAL framing.
//!
//! Every committed serving round appends **one record batch** (group commit): first the
//! round's feedback records in ingress order (feedbacks are observed before the round's
//! decisions — see `crowd_serve::server`), then its decision records in commit order.
//! The byte format
//! is specified in `docs/DECISION_LOG_FORMAT.md` at the repository root; the segment
//! framing (magic, version, CRC-32 per batch, atomic rotation, torn-tail detection)
//! lives in [`crowd_ckpt::wal`], and this module owns what goes *inside* a batch.
//!
//! A record stores everything deterministic re-execution needs and nothing more: the
//! full [`ArrivalContext`] a decision was made on (so replay can call the policy again
//! and check it reproduces the logged ranking) and the full [`PolicyFeedback`] of every
//! ingested online-learning tick. The policy's parameters are **never** logged — they
//! are a pure function of the initial state plus the logged event order, which is
//! exactly what makes a crashed server's replay bit-identical to the uninterrupted run.
//!
//! # Self-healing and compaction
//!
//! All I/O goes through the [`Fs`] storage handle in [`LogConfig::fs`], so the
//! fault-injection suites can poison any numbered operation. Three mechanisms keep the
//! log healthy when the storage underneath it misbehaves:
//!
//! * **Bounded append retries** — [`DecisionLog::append_retrying`] heals the segment
//!   tail (truncating any partial frame a failed append left behind) and retries up to
//!   [`LogConfig::append_retries`] times before surfacing the error.
//! * **Degraded markers** — [`LogRecord::Degraded`] records that the server shed load
//!   during a log outage, so replay stays aligned with what actually executed.
//! * **Compaction** — [`DecisionLog::compact`] freezes the replayed prefix into a
//!   *base image* (a `crowd-ckpt` snapshot named `base-<suffix_start:08>.ckpt`) and
//!   deletes the absorbed segments; recovery prefers the newest valid base plus the
//!   segment suffix and falls back to full replay when no base exists.
//!
//! Record tags are **additive**: a build reads tags it knows and fails typed on tags it
//! does not, without a segment-version bump (the WAL framing stays at
//! [`crowd_ckpt::wal::WAL_VERSION`] 1).

use crate::error::{Result, ServeError};
use crowd_ckpt::wal::{self, SegmentWriter};
use crowd_ckpt::{
    CkptError, DecodeState, DirSyncPolicy, Fs, SaveState, Snapshot, SnapshotFile, StateReader,
    StateWriter,
};
use crowd_sim::{ArrivalContext, PolicyFeedback, TaskId};
use std::path::{Path, PathBuf};

/// Record tag: a committed decision (request id, arrival context, ranking).
const TAG_DECISION: u8 = 1;
/// Record tag: an ingested feedback (request id, feedback payload).
const TAG_FEEDBACK: u8 = 2;
/// Record tag: a degraded-mode marker (work shed during a log outage).
const TAG_DEGRADED: u8 = 3;

/// Base-image section: suffix start + next request id.
const BASE_META_SECTION: &str = "base.meta";
/// Base-image section: the pending (unanswered-feedback) requests at the cut.
const BASE_PENDING_SECTION: &str = "base.pending";
/// Base-image section: the policy's checkpoint bytes at the cut.
const BASE_POLICY_SECTION: &str = "base.policy";

/// One committed serving event, in the log's total commit order.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// The server decided on an arrival: `shown`/`assignment` is the ranking the policy
    /// produced for `context` and acknowledged to the client as request `request_id`.
    Decision {
        /// Server-assigned id, strictly increasing in commit order.
        request_id: u64,
        /// The owned arrival the decision was computed on.
        context: ArrivalContext,
        /// The ranked task list returned to the client.
        shown: Vec<TaskId>,
        /// True when the decision was a single assignment rather than a ranking.
        assignment: bool,
    },
    /// The server ingested feedback for an earlier decision and ticked the policy's
    /// online learning (`Policy::observe`).
    Feedback {
        /// The decision this feedback refers to.
        request_id: u64,
        /// The feedback payload handed to `observe`.
        feedback: PolicyFeedback,
    },
    /// The server was degraded (its log was failing after bounded retries) and shed
    /// this much work instead of wedging. Appended when the outage heals, *before* the
    /// first post-outage round, so the log's record order stays exactly the execution
    /// order. Shed requests never touched the policy — replay treats this record as a
    /// counted no-op.
    Degraded {
        /// Decide requests rejected with [`ServeError::Degraded`] during the outage.
        shed_decides: u64,
        /// Feedback submissions dropped during the outage.
        shed_feedbacks: u64,
    },
}

impl SaveState for LogRecord {
    fn save_state(&self, w: &mut StateWriter) {
        match self {
            LogRecord::Decision {
                request_id,
                context,
                shown,
                assignment,
            } => {
                w.put_u8(TAG_DECISION);
                w.put_u64(*request_id);
                context.save_state(w);
                shown.save_state(w);
                w.put_bool(*assignment);
            }
            LogRecord::Feedback {
                request_id,
                feedback,
            } => {
                w.put_u8(TAG_FEEDBACK);
                w.put_u64(*request_id);
                feedback.save_state(w);
            }
            LogRecord::Degraded {
                shed_decides,
                shed_feedbacks,
            } => {
                w.put_u8(TAG_DEGRADED);
                w.put_u64(*shed_decides);
                w.put_u64(*shed_feedbacks);
            }
        }
    }
}

impl DecodeState for LogRecord {
    fn decode_state(r: &mut StateReader<'_>) -> crowd_ckpt::Result<Self> {
        match r.take_u8()? {
            TAG_DECISION => Ok(LogRecord::Decision {
                request_id: r.take_u64()?,
                context: ArrivalContext::decode_state(r)?,
                shown: Vec::<TaskId>::decode_state(r)?,
                assignment: r.take_bool()?,
            }),
            TAG_FEEDBACK => Ok(LogRecord::Feedback {
                request_id: r.take_u64()?,
                feedback: PolicyFeedback::decode_state(r)?,
            }),
            TAG_DEGRADED => Ok(LogRecord::Degraded {
                shed_decides: r.take_u64()?,
                shed_feedbacks: r.take_u64()?,
            }),
            tag => Err(CkptError::Corrupt {
                what: "decision log record",
                detail: format!("unknown record tag {tag}"),
            }),
        }
    }
}

impl LogRecord {
    /// The request id this record refers to; `None` for markers
    /// ([`LogRecord::Degraded`]) that are not tied to a single request.
    pub fn request_id(&self) -> Option<u64> {
        match self {
            LogRecord::Decision { request_id, .. } | LogRecord::Feedback { request_id, .. } => {
                Some(*request_id)
            }
            LogRecord::Degraded { .. } => None,
        }
    }
}

/// Encodes one committed round as a record-batch payload (`record count` then the
/// records back to back).
pub fn encode_batch(records: &[LogRecord]) -> Vec<u8> {
    let mut w = StateWriter::new();
    w.put_usize(records.len());
    for record in records {
        record.save_state(&mut w);
    }
    w.into_bytes()
}

/// Decodes one record-batch payload, enforcing exact consumption.
pub fn decode_batch(payload: &[u8]) -> crowd_ckpt::Result<Vec<LogRecord>> {
    let mut r = StateReader::new(payload);
    let count = r.take_len("decision log records", 1)?;
    let records = (0..count)
        .map(|_| LogRecord::decode_state(&mut r))
        .collect::<crowd_ckpt::Result<Vec<_>>>()?;
    r.finish("decision log record batch")?;
    Ok(records)
}

/// File name of the base image whose suffix starts at the given segment index
/// (`base-00000004.ckpt`).
pub fn base_file_name(suffix_start: u64) -> String {
    format!("base-{suffix_start:08}.ckpt")
}

/// Parses a base-image file name back to its suffix start; `None` for foreign files.
pub fn parse_base_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("base-")?.strip_suffix(".ckpt")?;
    if digits.len() < 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// A compaction base image: everything replay needs *instead of* the deleted log
/// prefix. Stored as a `crowd-ckpt` snapshot (magic, versioned sections, per-section
/// CRC-32) so corruption is always a typed error, never a silent misparse.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseImage {
    /// First segment index of the live suffix; every record below it is absorbed.
    pub suffix_start: u64,
    /// The server's next request id at the cut.
    pub next_request_id: u64,
    /// Decisions acknowledged but not yet matched by feedback at the cut, in id order.
    pub pending: Vec<(u64, ArrivalContext)>,
    /// The policy's full (non-canonical) checkpoint bytes at the cut, restored via
    /// `Policy::restore_state` before the suffix is replayed.
    pub policy: Vec<u8>,
}

impl BaseImage {
    fn to_snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        let mut meta = StateWriter::new();
        meta.put_u64(self.suffix_start);
        meta.put_u64(self.next_request_id);
        snap.put_raw(BASE_META_SECTION, meta.into_bytes());
        let mut pending = StateWriter::new();
        pending.put_usize(self.pending.len());
        for (id, context) in &self.pending {
            pending.put_u64(*id);
            context.save_state(&mut pending);
        }
        snap.put_raw(BASE_PENDING_SECTION, pending.into_bytes());
        snap.put_raw(BASE_POLICY_SECTION, self.policy.clone());
        snap
    }

    fn from_file(file: &SnapshotFile) -> crowd_ckpt::Result<BaseImage> {
        let mut meta = file.reader(BASE_META_SECTION)?;
        let suffix_start = meta.take_u64()?;
        let next_request_id = meta.take_u64()?;
        meta.finish(BASE_META_SECTION)?;
        let mut r = file.reader(BASE_PENDING_SECTION)?;
        let count = r.take_len("pending requests", 8)?;
        let mut pending = Vec::with_capacity(count);
        for _ in 0..count {
            let id = r.take_u64()?;
            pending.push((id, ArrivalContext::decode_state(&mut r)?));
        }
        r.finish(BASE_PENDING_SECTION)?;
        let mut policy_reader = file.reader(BASE_POLICY_SECTION)?;
        let policy = policy_reader
            .take_bytes(policy_reader.remaining())?
            .to_vec();
        Ok(BaseImage {
            suffix_start,
            next_request_id,
            pending,
            policy,
        })
    }
}

/// Where and how durably the decision log is written.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Rotation threshold: a new segment is opened before the first append that finds
    /// the current one at or past this many bytes. A segment therefore always holds at
    /// least one batch, whatever the threshold.
    pub segment_bytes: u64,
    /// `fdatasync` after every appended batch (the default). The server acknowledges a
    /// round's clients only after the append returns, so with this on an acknowledged
    /// decision is durable — the contract recovery relies on. Turning it off trades
    /// that guarantee for throughput (the OS flushes on its own schedule).
    pub sync_every_batch: bool,
    /// Storage backend every log operation goes through. [`Fs::real`] in production;
    /// the fault-injection suites swap in [`Fs::faulty`] to poison any numbered I/O
    /// site deterministically.
    pub fs: Fs,
    /// Directory-fsync strictness after a segment rotation's rename. The default
    /// [`DirSyncPolicy::Strict`] makes a failed directory sync an error — the segment
    /// *name* is part of what recovery reads, so acknowledging batches into a segment
    /// whose name might not survive power loss would break the ack barrier.
    pub dir_sync: DirSyncPolicy,
    /// Bounded self-healing: how many times [`DecisionLog::append_retrying`] heals the
    /// tail and retries a failed append before surfacing the error.
    pub append_retries: u32,
}

impl LogConfig {
    /// A log in `dir` with an 8 MiB rotation threshold, per-batch sync, the real
    /// filesystem, strict directory syncs and 2 append retries.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        LogConfig {
            dir: dir.into(),
            segment_bytes: 8 * 1024 * 1024,
            sync_every_batch: true,
            fs: Fs::real(),
            dir_sync: DirSyncPolicy::Strict,
            append_retries: 2,
        }
    }
}

/// What `DecisionLog::recover` found and repaired on disk.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LogRecovery {
    /// Live suffix segments present (after ignoring `.tmp` leftovers and deleting
    /// absorbed ones).
    pub segments: usize,
    /// Complete, CRC-verified record batches replayed from the suffix.
    pub batches: usize,
    /// Bytes of torn tail truncated off the final segment (0 for a clean log). A torn
    /// tail was never acknowledged to any client, so dropping it loses nothing.
    pub truncated_bytes: u64,
    /// Leftover `.tmp` files from an interrupted rotation or base write, deleted.
    pub removed_tmp: usize,
    /// Suffix start of the base image recovery restored from; `None` means full replay
    /// from segment 0.
    pub base: Option<u64>,
    /// Absorbed segments and superseded bases deleted while finishing an interrupted
    /// compaction.
    pub removed_absorbed: usize,
    /// Published base images that failed validation and were skipped (recovery fell
    /// back to an older base or to full replay).
    pub invalid_bases: usize,
}

/// Everything [`DecisionLog::recover`] hands back: the reopened log, the preferred
/// base image (if the log was compacted), the suffix records and the repair report.
#[derive(Debug)]
pub struct RecoveredLog {
    /// The log, reopened for appending after the last committed batch.
    pub log: DecisionLog,
    /// The base image standing in for the deleted prefix, when one was used.
    pub base: Option<BaseImage>,
    /// The committed records of the live suffix, in commit order. With no base this is
    /// the whole history.
    pub records: Vec<LogRecord>,
    /// What was found and repaired.
    pub recovery: LogRecovery,
}

/// What one [`DecisionLog::compact`] call absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// First segment index of the live suffix after the cut.
    pub suffix_start: u64,
    /// Sealed segments deleted because the base image now stands in for them.
    pub absorbed_segments: usize,
    /// Encoded size of the base image.
    pub base_bytes: u64,
}

/// The append side of the durable decision log.
#[derive(Debug)]
pub struct DecisionLog {
    config: LogConfig,
    writer: SegmentWriter,
    batches: u64,
    rotations: u64,
    first_index: u64,
    /// A failed append may have left a partial frame past the accounted clean length;
    /// the next append heals it before writing.
    dirty: bool,
}

impl DecisionLog {
    /// Creates a fresh log: the directory is created if needed, stale `.tmp` files are
    /// removed, and segment 0 is opened. Fails with [`ServeError::LogNotEmpty`] when
    /// segments or base images already exist — appending a fresh history over an old
    /// one would fork the log; use [`DecisionLog::recover`] to continue it instead.
    pub fn create(config: LogConfig) -> Result<DecisionLog> {
        let fs = config.fs.clone();
        fs.create_dir_all(&config.dir)?;
        let scan = wal::scan_dir_in(&fs, &config.dir)?;
        let (bases, _) = list_bases(&fs, &config.dir)?;
        if !scan.segments.is_empty() || !bases.is_empty() {
            return Err(ServeError::LogNotEmpty {
                dir: config.dir.clone(),
            });
        }
        for tmp in &scan.tmp_files {
            let _ = fs.remove_file(tmp);
        }
        let writer = SegmentWriter::create_in(&fs, &config.dir, 0, config.dir_sync)?;
        Ok(DecisionLog {
            config,
            writer,
            batches: 0,
            rotations: 0,
            first_index: 0,
            dirty: false,
        })
    }

    /// Opens an existing log for appending, returning the preferred base image, every
    /// committed suffix record in commit order, and what was repaired.
    ///
    /// Repairs: `.tmp` leftovers (segment rotations *and* base-image writes) are
    /// deleted; a torn tail on the **final** segment is truncated away (it was never
    /// acknowledged) while a torn tail on any *sealed* segment is an error — those
    /// bytes were synced before the next segment opened, so damage there is real
    /// corruption that replay must not paper over; an interrupted compaction is
    /// finished (absorbed segments and superseded bases deleted).
    ///
    /// Base preference: the newest base image that validates (magic, version, section
    /// CRCs, exact decode) *and* whose suffix segments are present wins; an invalid
    /// base is counted and skipped in favour of an older base or full replay — but a
    /// log whose segment history is incomplete (first segment past 0) with no valid
    /// base covering the gap is an error, never a silent partial replay. An empty or
    /// absent directory recovers to a fresh log.
    pub fn recover(config: LogConfig) -> Result<RecoveredLog> {
        let fs = config.fs.clone();
        fs.create_dir_all(&config.dir)?;
        let mut recovery = LogRecovery::default();
        let scan = wal::scan_dir_in(&fs, &config.dir)?;
        let (bases, base_tmp) = list_bases(&fs, &config.dir)?;
        for tmp in scan.tmp_files.iter().chain(&base_tmp) {
            fs.remove_file(tmp)?;
            recovery.removed_tmp += 1;
        }

        // Prefer the newest valid, covered base image.
        let mut base: Option<BaseImage> = None;
        for (suffix_start, path) in bases.iter().rev() {
            let covered = scan
                .first_index()
                .is_some_and(|first| first <= *suffix_start)
                && scan
                    .segments
                    .last()
                    .is_some_and(|(last, _)| *suffix_start <= *last);
            let candidate = SnapshotFile::read_in(&fs, path).and_then(|f| BaseImage::from_file(&f));
            match candidate {
                Ok(image) if image.suffix_start == *suffix_start && covered => {
                    base = Some(image);
                    break;
                }
                _ => recovery.invalid_bases += 1,
            }
        }
        let suffix_start = match &base {
            Some(image) => image.suffix_start,
            None => match scan.first_index() {
                Some(0) => 0,
                Some(first) => {
                    return Err(ServeError::Log {
                        detail: format!(
                            "log starts at segment {first} but no valid base image covers the \
                             compacted prefix ({} invalid bases)",
                            recovery.invalid_bases
                        ),
                    });
                }
                None if !bases.is_empty() => {
                    return Err(ServeError::Log {
                        detail: format!(
                            "log directory holds {} base image(s), none valid, and no segments",
                            bases.len()
                        ),
                    });
                }
                None => 0,
            },
        };
        recovery.base = base.as_ref().map(|b| b.suffix_start);

        // Finish any interrupted compaction. Absorbed segments go lowest-first so a
        // crash mid-sweep leaves the remaining indices contiguous.
        for (index, path) in &scan.segments {
            if *index < suffix_start {
                fs.remove_file(path)?;
                recovery.removed_absorbed += 1;
            }
        }
        for (start, path) in &bases {
            if *start < suffix_start {
                fs.remove_file(path)?;
                recovery.removed_absorbed += 1;
            }
        }

        let suffix: Vec<(u64, PathBuf)> = scan
            .segments
            .iter()
            .filter(|(index, _)| *index >= suffix_start)
            .cloned()
            .collect();
        if suffix.is_empty() {
            // A chosen base implies covered (non-empty) suffix, so this is a fresh dir.
            let writer = SegmentWriter::create_in(&fs, &config.dir, 0, config.dir_sync)?;
            let log = DecisionLog {
                config,
                writer,
                batches: 0,
                rotations: 0,
                first_index: 0,
                dirty: false,
            };
            return Ok(RecoveredLog {
                log,
                base: None,
                records: Vec::new(),
                recovery,
            });
        }
        recovery.segments = suffix.len();
        let records = read_segments_in(&fs, &suffix, &mut recovery)?;
        let (last_index, last_path) = suffix.last().expect("non-empty");
        let last = wal::read_segment_in(&fs, last_path)?;
        let writer = SegmentWriter::resume_in(&fs, last_path, *last_index, last.clean_len)?;
        let rotations = *last_index;
        let batches = recovery.batches as u64;
        let log = DecisionLog {
            config,
            writer,
            batches,
            rotations,
            first_index: suffix_start,
            dirty: false,
        };
        Ok(RecoveredLog {
            log,
            base,
            records,
            recovery,
        })
    }

    /// Read-only scan of an **uncompacted** log directory (tests, offline tooling): the
    /// full committed history in commit order, with the same torn-tail policy as
    /// [`DecisionLog::recover`] but touching nothing on disk. A compacted log's prefix
    /// exists only as a base image, so this fails typed there — use
    /// [`DecisionLog::read_tail`] instead.
    pub fn read(dir: &Path) -> Result<Vec<LogRecord>> {
        let (base, records) = DecisionLog::read_tail_in(&Fs::real(), dir)?;
        if let Some(base) = base {
            return Err(ServeError::Log {
                detail: format!(
                    "log was compacted at segment {}: the prefix exists only as a base image",
                    base.suffix_start
                ),
            });
        }
        Ok(records)
    }

    /// Read-only scan of a possibly compacted log: the preferred base image (if any)
    /// plus the suffix records, touching nothing on disk.
    pub fn read_tail(dir: &Path) -> Result<(Option<BaseImage>, Vec<LogRecord>)> {
        DecisionLog::read_tail_in(&Fs::real(), dir)
    }

    /// [`DecisionLog::read_tail`] through an explicit storage backend.
    pub fn read_tail_in(fs: &Fs, dir: &Path) -> Result<(Option<BaseImage>, Vec<LogRecord>)> {
        let scan = wal::scan_dir_in(fs, dir)?;
        let (bases, _) = list_bases(fs, dir)?;
        let mut base: Option<BaseImage> = None;
        for (suffix_start, path) in bases.iter().rev() {
            let covered = scan
                .first_index()
                .is_some_and(|first| first <= *suffix_start)
                && scan
                    .segments
                    .last()
                    .is_some_and(|(last, _)| *suffix_start <= *last);
            let candidate = SnapshotFile::read_in(fs, path).and_then(|f| BaseImage::from_file(&f));
            if let Ok(image) = candidate {
                if image.suffix_start == *suffix_start && covered {
                    base = Some(image);
                    break;
                }
            }
        }
        let suffix_start = base.as_ref().map_or(0, |b| b.suffix_start);
        let suffix: Vec<(u64, PathBuf)> = scan
            .segments
            .iter()
            .filter(|(index, _)| *index >= suffix_start)
            .cloned()
            .collect();
        let mut recovery = LogRecovery::default();
        let records = read_segments_in(fs, &suffix, &mut recovery)?;
        Ok((base, records))
    }

    /// Appends one committed round as a single record batch, rotating to a new segment
    /// first when the current one is past the threshold. With
    /// [`LogConfig::sync_every_batch`] the batch is durable when this returns. A batch
    /// is counted **only** when it is fully written *and* synced — a failed durability
    /// barrier rolls the accounting back so a retry lands the batch exactly once.
    pub fn append(&mut self, records: &[LogRecord]) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        if self.dirty {
            self.heal_tail()?;
        }
        if self.writer.len() >= self.config.segment_bytes && !self.writer.is_empty() {
            self.rotate()?;
        }
        let before = self.writer.len();
        if let Err(e) = self.writer.append(&encode_batch(records)) {
            // A short write may have left a partial frame past `before`.
            self.dirty = true;
            return Err(e.into());
        }
        if self.config.sync_every_batch {
            if let Err(e) = self.writer.sync() {
                // The frame reached the OS but its durability is unknown: roll the
                // accounting back and let the heal physically remove it, so the retry
                // appends the batch exactly once.
                self.writer.rewind_to(before);
                self.dirty = true;
                return Err(e.into());
            }
        }
        self.batches += 1;
        Ok(())
    }

    /// [`DecisionLog::append`] with bounded self-healing: after a failure the segment
    /// tail is truncated back to the last clean frame and the append retried, up to
    /// [`LogConfig::append_retries`] times. The final error (if any) is the last
    /// attempt's.
    pub fn append_retrying(&mut self, records: &[LogRecord]) -> Result<()> {
        let mut last = match self.append(records) {
            Ok(()) => return Ok(()),
            Err(e) => e,
        };
        for _ in 0..self.config.append_retries {
            match self.append(records) {
                Ok(()) => return Ok(()),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Truncates any partial frame a failed append left past the accounted clean
    /// length. [`DecisionLog::append`] calls this automatically before writing onto a
    /// dirty tail; it is public for callers that want to heal eagerly.
    pub fn heal_tail(&mut self) -> Result<()> {
        self.writer.truncate_to_len()?;
        self.dirty = false;
        Ok(())
    }

    /// Seals the current segment and opens the next one. Self-healing: when a previous
    /// rotation attempt already published the next segment but failed afterwards (e.g.
    /// on the directory sync), the empty segment is adopted instead of refused.
    fn rotate(&mut self) -> Result<()> {
        // Seal the full segment (make its tail durable), then rotate atomically.
        self.writer.sync()?;
        let next = self.writer.index() + 1;
        let path = self.config.dir.join(wal::segment_file_name(next));
        self.writer = if self.config.fs.exists(&path) {
            let scan = wal::read_segment_in(&self.config.fs, &path)?;
            if scan.index != next || !scan.batches.is_empty() {
                return Err(ServeError::Log {
                    detail: format!(
                        "cannot adopt {} during rotation: header index {} with {} batches",
                        path.display(),
                        scan.index,
                        scan.batches.len()
                    ),
                });
            }
            SegmentWriter::resume_in(&self.config.fs, &path, next, scan.clean_len)?
        } else {
            SegmentWriter::create_in(
                &self.config.fs,
                &self.config.dir,
                next,
                self.config.dir_sync,
            )?
        };
        self.rotations += 1;
        Ok(())
    }

    /// Compacts the log: everything committed so far is frozen into a base image and
    /// the absorbed segments are deleted, leaving the base plus a fresh suffix.
    ///
    /// The caller supplies the replay state at the cut — the next request id, the
    /// pending (unanswered-feedback) requests and the policy's checkpoint bytes. The
    /// current segment is sealed and rotated first so the suffix starts at a segment
    /// boundary, then the base is written atomically (tmp + rename + dir sync), and
    /// only then are absorbed segments deleted lowest-first — a crash anywhere in
    /// between leaves either the old history or a recoverable base-plus-garbage layout
    /// that [`DecisionLog::recover`] finishes cleaning.
    pub fn compact(
        &mut self,
        next_request_id: u64,
        pending: Vec<(u64, ArrivalContext)>,
        policy: Vec<u8>,
    ) -> Result<CompactionStats> {
        if self.dirty {
            self.heal_tail()?;
        }
        if self.writer.is_empty() {
            self.writer.sync()?;
        } else {
            self.rotate()?;
        }
        let suffix_start = self.writer.index();
        let image = BaseImage {
            suffix_start,
            next_request_id,
            pending,
            policy,
        };
        let snap = image.to_snapshot();
        let base_bytes = snap.to_bytes().len() as u64;
        snap.write_to_in(
            &self.config.fs,
            self.config.dir.join(base_file_name(suffix_start)),
        )?;
        let mut absorbed = 0;
        let scan = wal::scan_dir_in(&self.config.fs, &self.config.dir)?;
        for (index, path) in &scan.segments {
            if *index < suffix_start {
                self.config.fs.remove_file(path)?;
                absorbed += 1;
            }
        }
        let (bases, _) = list_bases(&self.config.fs, &self.config.dir)?;
        for (start, path) in &bases {
            if *start < suffix_start {
                self.config.fs.remove_file(path)?;
            }
        }
        self.first_index = suffix_start;
        Ok(CompactionStats {
            suffix_start,
            absorbed_segments: absorbed,
            base_bytes,
        })
    }

    /// Forces everything appended so far to disk (used at graceful shutdown and by
    /// callers running with `sync_every_batch` off).
    pub fn sync(&mut self) -> Result<()> {
        self.writer.sync()?;
        Ok(())
    }

    /// Record batches appended over this log's whole on-disk history.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Segment rotations performed over this log's whole on-disk history.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Segments currently on disk (suffix only — absorbed segments are gone).
    pub fn live_segments(&self) -> u64 {
        self.writer.index() - self.first_index + 1
    }

    /// Index of the first live segment (0 until the first compaction).
    pub fn first_index(&self) -> u64 {
        self.first_index
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }
}

/// Published base images as `(suffix_start, path)` pairs, sorted ascending.
type BaseList = Vec<(u64, PathBuf)>;

/// Lists a log directory's base images: `(suffix_start, path)` sorted ascending, plus
/// leftover `.tmp` files from interrupted base writes.
fn list_bases(fs: &Fs, dir: &Path) -> Result<(BaseList, Vec<PathBuf>)> {
    let mut bases = Vec::new();
    let mut tmp = Vec::new();
    for (name, path) in fs.read_dir(dir)? {
        if let Some(stem) = name.strip_suffix(".tmp") {
            if parse_base_file_name(stem).is_some() {
                tmp.push(path);
            }
        } else if let Some(start) = parse_base_file_name(&name) {
            bases.push((start, path));
        }
    }
    bases.sort_by_key(|(start, _)| *start);
    tmp.sort();
    Ok((bases, tmp))
}

/// Decodes every committed record of the given segments in order, enforcing the
/// torn-tail policy (only the final segment may be torn).
fn read_segments_in(
    fs: &Fs,
    segments: &[(u64, PathBuf)],
    recovery: &mut LogRecovery,
) -> Result<Vec<LogRecord>> {
    let mut records = Vec::new();
    let last_pos = segments.len().saturating_sub(1);
    for (pos, (index, path)) in segments.iter().enumerate() {
        let segment = wal::read_segment_in(fs, path)?;
        if segment.index != *index {
            return Err(ServeError::Log {
                detail: format!(
                    "{} claims segment index {} in its header",
                    path.display(),
                    segment.index
                ),
            });
        }
        if segment.is_torn() {
            if pos != last_pos {
                return Err(ServeError::Log {
                    detail: format!(
                        "sealed segment {} has a torn tail ({} bytes) — corruption, not a crash artifact",
                        path.display(),
                        segment.torn_bytes
                    ),
                });
            }
            recovery.truncated_bytes = segment.torn_bytes;
        }
        recovery.batches += segment.batches.len();
        for payload in &segment.batches {
            records.extend(decode_batch(payload)?);
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_ckpt::{FaultKind, FaultPlan, FaultRule, OpClass};
    use crowd_sim::{TaskSnapshot, WorkerId};

    fn context(tag: u32) -> ArrivalContext {
        ArrivalContext {
            time: 100 + tag as u64,
            worker_id: WorkerId(tag),
            worker_feature: vec![0.5, tag as f32],
            worker_quality: 0.75,
            is_new_worker: tag == 0,
            available: (0..3)
                .map(|i| TaskSnapshot {
                    id: TaskId(10 * tag + i),
                    feature: vec![i as f32, 1.0],
                    quality: 0.25 * i as f32,
                    award: 9.0,
                    category: 1,
                    domain: 2,
                    deadline: 500,
                    completions: i as usize,
                })
                .collect(),
        }
    }

    fn feedback(tag: u32) -> PolicyFeedback {
        PolicyFeedback {
            time: 100 + tag as u64,
            worker_id: WorkerId(tag),
            worker_quality: 0.75,
            shown: vec![TaskId(10 * tag), TaskId(10 * tag + 1)],
            completed: Some((TaskId(10 * tag), 0)),
            quality_gain: 0.125,
            worker_feature_before: vec![0.5, tag as f32],
            worker_feature_after: vec![0.25, tag as f32],
        }
    }

    fn sample_records(n: u32) -> Vec<LogRecord> {
        (0..n)
            .flat_map(|tag| {
                [
                    LogRecord::Decision {
                        request_id: 2 * tag as u64,
                        context: context(tag),
                        shown: vec![TaskId(10 * tag + 1), TaskId(10 * tag)],
                        assignment: tag % 2 == 0,
                    },
                    LogRecord::Feedback {
                        request_id: 2 * tag as u64,
                        feedback: feedback(tag),
                    },
                ]
            })
            .collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("crowd-declog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn record_batch_roundtrips() {
        let mut records = sample_records(3);
        records.push(LogRecord::Degraded {
            shed_decides: 7,
            shed_feedbacks: 2,
        });
        assert_eq!(records.last().unwrap().request_id(), None);
        assert_eq!(records[0].request_id(), Some(0));
        let payload = encode_batch(&records);
        assert_eq!(decode_batch(&payload).unwrap(), records);
        assert!(decode_batch(&payload[..payload.len() - 1]).is_err());
        let mut bad = payload.clone();
        bad[8] = 99; // first record tag
        assert!(matches!(decode_batch(&bad), Err(CkptError::Corrupt { .. })));
    }

    #[test]
    fn base_file_names_roundtrip() {
        assert_eq!(base_file_name(4), "base-00000004.ckpt");
        assert_eq!(parse_base_file_name("base-00000004.ckpt"), Some(4));
        assert_eq!(
            parse_base_file_name("base-123456789.ckpt"),
            Some(123_456_789)
        );
        assert_eq!(parse_base_file_name("base-0000000x.ckpt"), None);
        assert_eq!(parse_base_file_name("segment-00000004.wlog"), None);
        assert_eq!(parse_base_file_name("base-00000004.ckpt.tmp"), None);
    }

    #[test]
    fn create_append_read_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut log = DecisionLog::create(LogConfig::new(&dir)).unwrap();
        let records = sample_records(2);
        log.append(&records[..2]).unwrap();
        log.append(&records[2..]).unwrap();
        log.append(&[]).unwrap(); // no-op, not a batch
        assert_eq!(log.batches(), 2);
        assert_eq!(log.live_segments(), 1);
        assert_eq!(DecisionLog::read(&dir).unwrap(), records);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_an_existing_history() {
        let dir = tmp_dir("not-empty");
        let mut log = DecisionLog::create(LogConfig::new(&dir)).unwrap();
        log.append(&sample_records(1)).unwrap();
        drop(log);
        assert!(matches!(
            DecisionLog::create(LogConfig::new(&dir)),
            Err(ServeError::LogNotEmpty { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiny_threshold_rotates_per_batch_and_recovers_across_segments() {
        let dir = tmp_dir("rotate");
        let mut config = LogConfig::new(&dir);
        config.segment_bytes = 1; // every append past the first batch rotates
        let mut log = DecisionLog::create(config.clone()).unwrap();
        let records = sample_records(4);
        for pair in records.chunks(2) {
            log.append(pair).unwrap();
        }
        assert_eq!(log.rotations(), 3);
        drop(log);

        let recovered = DecisionLog::recover(config).unwrap();
        assert_eq!(recovered.records, records);
        assert!(recovered.base.is_none());
        assert_eq!(recovered.recovery.segments, 4);
        assert_eq!(recovered.recovery.batches, 4);
        assert_eq!(recovered.recovery.truncated_bytes, 0);
        assert_eq!(recovered.log.rotations(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_truncates_only_a_final_torn_tail() {
        let dir = tmp_dir("torn");
        let mut log = DecisionLog::create(LogConfig::new(&dir)).unwrap();
        let records = sample_records(2);
        log.append(&records[..2]).unwrap();
        log.append(&records[2..]).unwrap();
        drop(log);
        // Tear the final batch: chop a few payload bytes off the single segment.
        let seg = dir.join(wal::segment_file_name(0));
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();

        let recovered = DecisionLog::recover(LogConfig::new(&dir)).unwrap();
        assert_eq!(recovered.records, records[..2].to_vec());
        assert!(recovered.recovery.truncated_bytes > 0);
        // The log continues cleanly after the truncation.
        let mut log = recovered.log;
        log.append(&records[2..]).unwrap();
        drop(log);
        assert_eq!(DecisionLog::read(&dir).unwrap(), records);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_rejects_a_torn_sealed_segment() {
        let dir = tmp_dir("sealed");
        let mut config = LogConfig::new(&dir);
        config.segment_bytes = 1;
        let mut log = DecisionLog::create(config.clone()).unwrap();
        let records = sample_records(2);
        log.append(&records[..2]).unwrap();
        log.append(&records[2..]).unwrap(); // rotates: segment 0 is now sealed
        drop(log);
        let seg0 = dir.join(wal::segment_file_name(0));
        let bytes = std::fs::read(&seg0).unwrap();
        std::fs::write(&seg0, &bytes[..bytes.len() - 1]).unwrap();
        assert!(matches!(
            DecisionLog::recover(config),
            Err(ServeError::Log { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_removes_rotation_leftovers_and_fresh_dir_is_empty() {
        let dir = tmp_dir("tmp-files");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("segment-00000000.wlog.tmp"), b"half a header").unwrap();
        std::fs::write(dir.join("base-00000000.ckpt.tmp"), b"half a base").unwrap();
        let recovered = DecisionLog::recover(LogConfig::new(&dir)).unwrap();
        assert!(recovered.records.is_empty());
        assert_eq!(recovered.recovery.removed_tmp, 2);
        assert_eq!(recovered.recovery.segments, 0);
        let mut log = recovered.log;
        log.append(&sample_records(1)).unwrap();
        drop(log);
        assert_eq!(DecisionLog::read(&dir).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_writes_a_base_and_deletes_absorbed_segments() {
        let dir = tmp_dir("compact");
        let mut config = LogConfig::new(&dir);
        config.segment_bytes = 1;
        let mut log = DecisionLog::create(config.clone()).unwrap();
        let records = sample_records(4);
        for pair in records.chunks(2) {
            log.append(pair).unwrap();
        }
        assert_eq!(log.live_segments(), 4);
        let pending = vec![(7, context(9))];
        let stats = log
            .compact(8, pending.clone(), b"policy-bytes".to_vec())
            .unwrap();
        assert_eq!(stats.suffix_start, 4);
        assert_eq!(stats.absorbed_segments, 4);
        assert!(stats.base_bytes > 0);
        assert_eq!(log.live_segments(), 1);
        assert_eq!(log.first_index(), 4);
        // The suffix continues after the cut.
        let more = sample_records(5);
        log.append(&more[8..]).unwrap();
        drop(log);

        // Full read refuses (the prefix is gone); the tail read returns the base.
        assert!(matches!(
            DecisionLog::read(&dir),
            Err(ServeError::Log { .. })
        ));
        let (base, tail) = DecisionLog::read_tail(&dir).unwrap();
        let base = base.unwrap();
        assert_eq!(base.suffix_start, 4);
        assert_eq!(base.next_request_id, 8);
        assert_eq!(base.pending, pending);
        assert_eq!(base.policy, b"policy-bytes");
        assert_eq!(tail, more[8..].to_vec());

        let recovered = DecisionLog::recover(config).unwrap();
        assert_eq!(recovered.recovery.base, Some(4));
        assert_eq!(recovered.base.unwrap(), base);
        assert_eq!(recovered.records, more[8..].to_vec());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_finishes_an_interrupted_compaction() {
        let dir = tmp_dir("interrupted");
        let mut config = LogConfig::new(&dir);
        config.segment_bytes = 1;
        let mut log = DecisionLog::create(config.clone()).unwrap();
        let records = sample_records(3);
        for pair in records.chunks(2) {
            log.append(pair).unwrap();
        }
        drop(log);
        // Simulate a crash right after the base was published: segments 0..=2 are
        // still on disk even though the base absorbs everything below 2.
        let base = BaseImage {
            suffix_start: 2,
            next_request_id: 4,
            pending: Vec::new(),
            policy: vec![1, 2, 3],
        };
        base.to_snapshot()
            .write_to(dir.join(base_file_name(2)))
            .unwrap();

        let recovered = DecisionLog::recover(config).unwrap();
        assert_eq!(recovered.recovery.base, Some(2));
        assert_eq!(recovered.recovery.removed_absorbed, 2);
        assert_eq!(recovered.records, records[4..].to_vec());
        assert!(!dir.join(wal::segment_file_name(0)).exists());
        assert!(!dir.join(wal::segment_file_name(1)).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn an_invalid_base_falls_back_to_full_replay() {
        let dir = tmp_dir("bad-base");
        let mut log = DecisionLog::create(LogConfig::new(&dir)).unwrap();
        let records = sample_records(2);
        log.append(&records).unwrap();
        drop(log);
        std::fs::write(dir.join(base_file_name(0)), b"not a snapshot at all").unwrap();

        let recovered = DecisionLog::recover(LogConfig::new(&dir)).unwrap();
        assert_eq!(recovered.recovery.invalid_bases, 1);
        assert_eq!(recovered.recovery.base, None);
        assert_eq!(recovered.records, records);
        std::fs::remove_dir_all(&dir).unwrap();

        // But a compacted prefix with no valid base is an error, never partial replay.
        let dir = tmp_dir("bad-base-compacted");
        let mut config = LogConfig::new(&dir);
        config.segment_bytes = 1;
        let mut log = DecisionLog::create(config.clone()).unwrap();
        for pair in sample_records(2).chunks(2) {
            log.append(pair).unwrap();
        }
        log.compact(4, Vec::new(), vec![9]).unwrap();
        drop(log);
        std::fs::write(dir.join(base_file_name(1)), b"garbage").unwrap();
        std::fs::remove_file(dir.join(base_file_name(2))).unwrap();
        assert!(matches!(
            DecisionLog::recover(config),
            Err(ServeError::Log { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_retrying_heals_an_injected_short_write() {
        // Learn the global op index of the first append's frame write.
        let dir = tmp_dir("retry-probe");
        let (fs, probe) = Fs::faulty(FaultPlan::none());
        let mut config = LogConfig::new(&dir);
        config.fs = fs;
        let mut log = DecisionLog::create(config).unwrap();
        let write_op = probe.ops();
        log.append(&sample_records(1)).unwrap();
        drop(log);
        std::fs::remove_dir_all(&dir).unwrap();

        // Re-run with exactly that op poisoned (once): the short write leaves a
        // partial frame, append_retrying truncates it and the retry succeeds.
        let dir = tmp_dir("retry");
        let (fs, probe) = Fs::faulty(FaultPlan::fail_op(write_op));
        let mut config = LogConfig::new(&dir);
        config.fs = fs;
        let mut log = DecisionLog::create(config).unwrap();
        let records = sample_records(1);
        log.append_retrying(&records).unwrap();
        assert_eq!(probe.fired().len(), 1);
        assert_eq!(log.batches(), 1);
        drop(log);
        assert_eq!(DecisionLog::read(&dir).unwrap(), records);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_retrying_survives_a_failed_sync_without_duplicating_the_batch() {
        let dir = tmp_dir("retry-sync");
        let (fs, probe) = Fs::faulty(FaultPlan::none().with_rule(FaultRule {
            from_op: 0,
            to_op: u64::MAX,
            class: Some(OpClass::SyncData),
            kind: FaultKind::Fail,
            once: true,
        }));
        let mut config = LogConfig::new(&dir);
        config.fs = fs;
        let mut log = DecisionLog::create(config).unwrap();
        let records = sample_records(1);
        // The first per-batch fdatasync fails after a complete write; the retry must
        // land the batch exactly once.
        log.append_retrying(&records).unwrap();
        assert_eq!(probe.fired().len(), 1);
        assert_eq!(log.batches(), 1);
        drop(log);
        assert_eq!(DecisionLog::read(&dir).unwrap(), records);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
