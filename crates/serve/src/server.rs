//! The decision server: bounded ingress, a dedicated micro-batching worker, group
//! commit to the decision log, and replay-based crash recovery.
//!
//! # Call chain
//!
//! ```text
//! client threads                 batch worker (one dedicated thread)
//! ──────────────                 ───────────────────────────────────
//! Client::decide(ctx) ──┐
//! Client::decide(ctx) ──┼──► bounded sync_channel ──► drain ≤ max_batch within
//! Client::feedback(..) ─┘    (backpressure)           batch_window
//!                                                        │
//!                                              Policy::observe per queued feedback
//!                                              (online learning ticks, FIFO)
//!                                                        │
//!                                              one BatchedPolicy::act_batch
//!                                              over every drained arrival
//!                                                        │
//!                                              DecisionLog::append + sync
//!                                              (group commit, one batch/round)
//!                                                        │
//!                                              ack every caller
//! ```
//!
//! # Backpressure contract
//!
//! The ingress queue holds at most [`ServeConfig::queue_capacity`] requests.
//! [`Client::decide`] and [`Client::feedback`] **block** when it is full — arrival
//! producers slow to the server's drain rate instead of ballooning memory.
//! [`Client::try_decide`] fails fast with [`ServeError::Saturated`] instead, which is
//! what the saturation benches probe (and what [`Client::decide_with_retry`] turns
//! into bounded backoff). The worker drains at most [`ServeConfig::max_batch`]
//! decisions per round and closes a round early when [`ServeConfig::batch_window`]
//! elapses, bounding the queueing delay any single arrival can be charged while
//! waiting for co-batched neighbours.
//!
//! # Determinism and the ack barrier
//!
//! A round is committed in a fixed order: the round's queued feedback ticks first
//! (`observe`, in arrival order — a feedback always entered the queue before any
//! decide it shares a round with, so applying it first makes execution order a
//! function of queue order alone, independent of batch boundaries), then one
//! `act_batch` over the round's arrivals (every view evaluated against the
//! post-tick parameters — the `BatchedPolicy` contract), then one durable log append
//! of the round's records, then the client acks. Clients are only acknowledged
//! **after** the append returns, so every decision a client ever saw is in the log,
//! and the log's record order *is* the policy's execution order — which is why
//! [`replay_records`] can re-execute it and land on bit-identical state.
//!
//! # Degraded mode instead of wedging
//!
//! When the log fails after the bounded retries of `DecisionLog::append_retrying`,
//! the worker does **not** stop. The failed round's records — already executed by the
//! policy — are kept as an in-memory backlog, its clients get
//! [`ServeError::Degraded`], and every following round is shed *without touching the
//! policy* until an append succeeds again. Healing appends the backlog first, then a
//! [`LogRecord::Degraded`] marker counting the shed work, so the log's record order
//! remains exactly the execution order and replay stays deterministic. A kill during
//! an outage drops the backlog, which is precisely what a real crash would do; a
//! graceful drain makes one final heal attempt and reports what still could not reach
//! the log in [`ServeReport::log_error`]. Requests that waited in the ingress queue
//! past [`ServeConfig::shed_staler_than`] are likewise shed with `Degraded` — they
//! never touch the policy, so no log marker is needed for them.

use crate::error::{Result, ServeError};
use crate::log::{CompactionStats, DecisionLog, LogRecord, LogRecovery};
use crowd_ckpt::{StateReader, StateWriter};
use crowd_parallel::{spawn_dedicated, ThreadPool};
use crowd_sim::{
    Action, ArrivalContext, BatchedPolicy, BoxedBatchedPolicy, Decision, PolicyFeedback, TaskId,
};
use std::collections::BTreeMap;
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Capacity of the bounded ingress queue (the backpressure bound).
    pub queue_capacity: usize,
    /// Most decisions coalesced into one `act_batch` round.
    pub max_batch: usize,
    /// How long the worker waits for co-batched arrivals after the first request of a
    /// round before committing what it has.
    pub batch_window: Duration,
    /// Pool handed to the policy for intra-batch parallelism (packed forward passes);
    /// the serving loop itself stays single-threaded and deterministic.
    pub pool: ThreadPool,
    /// Decision-log destination; `None` serves without durability (benches probing
    /// pure decision latency).
    pub log: Option<crate::log::LogConfig>,
    /// Load shedding: a decide that waited in the ingress queue longer than this is
    /// answered with [`ServeError::Degraded`] instead of being served on stale state.
    /// The shed request never touches the policy, so retrying it is a fresh request.
    /// `None` (the default) serves every request however stale.
    pub shed_staler_than: Option<Duration>,
    /// Auto-compaction: when the log holds more than this many live segments after a
    /// committed round, the worker compacts it (base image + truncated suffix, see
    /// `DecisionLog::compact`). Requires a policy with checkpoint support; the first
    /// compaction failure is recorded in [`ServeReport::compact_error`] and disables
    /// further auto-compaction (serving continues — compaction is an optimisation).
    /// `None` (the default) never auto-compacts.
    pub compact_after_segments: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 1024,
            max_batch: 64,
            batch_window: Duration::from_micros(200),
            pool: ThreadPool::serial(),
            log: None,
            shed_staler_than: None,
            compact_after_segments: None,
        }
    }
}

/// A ranked decision acknowledged to a client.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeDecision {
    /// Server-assigned id; hand it back with [`Client::feedback`].
    pub request_id: u64,
    /// The ranked task list, best first (one element for an assignment).
    pub shown: Vec<TaskId>,
    /// True when the policy assigned a single task rather than ranking the pool.
    pub assignment: bool,
}

impl ServeDecision {
    /// The owned [`Action`] equivalent of this decision.
    pub fn action(&self) -> Action {
        if self.assignment {
            Action::Assign(self.shown[0])
        } else {
            Action::Rank(self.shown.clone())
        }
    }
}

/// Counters the batch worker hands back at shutdown.
#[derive(Debug, Default, Clone)]
pub struct ServeReport {
    /// Decisions committed and acknowledged.
    pub decisions: u64,
    /// Feedback ticks ingested (each one `Policy::observe`).
    pub feedbacks: u64,
    /// Feedbacks dropped because their request id was unknown or already consumed.
    pub unknown_feedbacks: u64,
    /// Committed rounds (each at most one log batch).
    pub rounds: u64,
    /// Largest number of decisions coalesced into one round.
    pub max_round_decisions: usize,
    /// Decide requests answered with [`ServeError::Degraded`] (log outage or
    /// staleness bound) instead of being served.
    pub shed_decides: u64,
    /// Feedback submissions dropped during a log outage.
    pub shed_feedbacks: u64,
    /// Rounds shed wholesale because the log was down.
    pub degraded_rounds: u64,
    /// Log outages that healed (backlog + degraded marker appended, serving resumed).
    pub healed: u64,
    /// Log compactions performed (explicit and automatic).
    pub compactions: u64,
    /// First auto-compaction failure; set once, after which auto-compaction is
    /// disabled for the rest of the run (explicit [`Client::compact`] still works).
    pub compact_error: Option<String>,
    /// Record batches appended to the decision log.
    pub log_batches: u64,
    /// Segment rotations performed by the decision log.
    pub log_rotations: u64,
    /// Set when the log was **still** failing at shutdown: a drain's final heal
    /// attempt did not get the backlog appended, or the shutdown sync failed.
    pub log_error: Option<String>,
}

impl ServeReport {
    /// Mean decisions per committed round — the achieved micro-batch occupancy.
    pub fn mean_round_decisions(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.decisions as f64 / self.rounds as f64
        }
    }
}

/// What [`Server::recover`] replayed before serving resumed.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Decision records re-executed (each one `act`, checked against the log).
    pub replayed_decisions: u64,
    /// Feedback records re-executed (each one `observe`).
    pub replayed_feedbacks: u64,
    /// Degraded markers replayed (shed work — a counted no-op for the policy).
    pub replayed_degraded: u64,
    /// Decisions still awaiting feedback after replay.
    pub pending_after_replay: usize,
    /// The request-id ⇄ context handshake: every decision that was acknowledged but
    /// never matched by feedback, in id order. Clients that held these ids across the
    /// crash can resume feedback against the recovered server.
    pub pending_requests: Vec<(u64, ArrivalContext)>,
    /// Segment index the replay suffix started at, when recovery restored from a
    /// compaction base image instead of replaying from segment 0.
    pub compacted_suffix_start: Option<u64>,
    /// What the log layer found and repaired on disk.
    pub log: LogRecovery,
}

/// The server state that is a pure function of the logged event order.
#[derive(Debug, Default)]
pub struct ReplayedState {
    /// Next request id to assign (max logged id + 1).
    pub next_request_id: u64,
    /// Decisions whose feedback has not arrived yet, by request id. The map is ordered
    /// so any future iteration over it is deterministic.
    pending: BTreeMap<u64, ArrivalContext>,
    /// Decision records replayed.
    pub decisions: u64,
    /// Feedback records replayed.
    pub feedbacks: u64,
    /// Degraded markers replayed.
    pub degraded: u64,
}

impl ReplayedState {
    /// Number of decisions awaiting feedback.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

/// Re-executes a committed record sequence against `policy`, reconstructing the server
/// state and verifying every logged decision along the way.
///
/// Replay calls `act` per decision record and `observe` per feedback record —
/// sequentially, in record order. That matches the original micro-batched execution
/// exactly because of the `BatchedPolicy` contract: within a round every view was
/// evaluated against the same parameters (feedback ticks run before the round's
/// `act_batch`, and records are laid down in that execution order), so the sequential
/// re-execution consumes the same RNG stream and visits the same parameters as the
/// original `act_batch` rounds, whatever the batch boundaries were. The recomputed
/// ranking must
/// equal the logged one; a mismatch means the log and the policy's initial state do
/// not belong together and recovery fails with [`ServeError::Recovery`] rather than
/// silently forking history. [`LogRecord::Degraded`] markers are counted, nothing
/// more — the work they stand for was shed before it touched the policy.
pub fn replay_records(
    policy: &mut dyn BatchedPolicy,
    records: &[LogRecord],
) -> Result<ReplayedState> {
    let mut state = ReplayedState::default();
    replay_records_into(policy, records, &mut state)?;
    Ok(state)
}

/// [`replay_records`] continuing from an existing state — the compacted-recovery
/// path seeds `state` from the base image (next request id, pending requests) and
/// replays only the log suffix on top of it.
pub fn replay_records_into(
    policy: &mut dyn BatchedPolicy,
    records: &[LogRecord],
    state: &mut ReplayedState,
) -> Result<()> {
    let mut decision = Decision::new();
    for record in records {
        match record {
            LogRecord::Decision {
                request_id,
                context,
                shown,
                assignment,
            } => {
                if *request_id < state.next_request_id {
                    return Err(ServeError::Recovery {
                        detail: format!("request ids are not strictly increasing at {request_id}"),
                    });
                }
                policy.act(&context.view(), &mut decision);
                if decision.shown() != shown.as_slice() || decision.is_assignment() != *assignment {
                    return Err(ServeError::Recovery {
                        detail: format!(
                            "re-executed decision for request {request_id} diverged from the log \
                             (logged {} task(s), recomputed {})",
                            shown.len(),
                            decision.len()
                        ),
                    });
                }
                state.pending.insert(*request_id, context.clone());
                state.next_request_id = request_id + 1;
                state.decisions += 1;
            }
            LogRecord::Feedback {
                request_id,
                feedback,
            } => {
                let Some(context) = state.pending.remove(request_id) else {
                    return Err(ServeError::Recovery {
                        detail: format!("feedback for unknown request {request_id}"),
                    });
                };
                policy.observe(&context.view(), &feedback.view());
                state.feedbacks += 1;
            }
            LogRecord::Degraded { .. } => {
                state.degraded += 1;
            }
        }
    }
    Ok(())
}

/// One message on the ingress queue.
enum Request {
    Decide {
        context: ArrivalContext,
        enqueued: Instant,
        reply: mpsc::Sender<Result<ServeDecision>>,
    },
    Feedback {
        request_id: u64,
        feedback: PolicyFeedback,
    },
    Compact {
        reply: mpsc::Sender<Result<CompactionStats>>,
    },
    /// `drain: true` is a graceful shutdown (everything queued is still served);
    /// `drain: false` simulates a crash — stop now, answer nobody.
    Stop { drain: bool },
}

/// A cheap, cloneable handle submitting requests to a running [`Server`].
#[derive(Clone)]
pub struct Client {
    ingress: SyncSender<Request>,
}

impl Client {
    /// Submits an arrival and blocks until the server's micro-batch round commits it.
    /// Blocks in the ingress queue when the server is saturated (backpressure).
    pub fn decide(&self, context: ArrivalContext) -> Result<ServeDecision> {
        let (reply, response) = mpsc::channel();
        self.ingress
            .send(Request::Decide {
                context,
                enqueued: Instant::now(),
                reply,
            })
            .map_err(|_| ServeError::ShuttingDown)?;
        response.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// Like [`Client::decide`] but fails fast with [`ServeError::Saturated`] when the
    /// ingress queue is full instead of blocking (clones `context` only on successful
    /// enqueue).
    pub fn try_decide(&self, context: &ArrivalContext) -> Result<ServeDecision> {
        let (reply, response) = mpsc::channel();
        self.ingress
            .try_send(Request::Decide {
                context: context.clone(),
                enqueued: Instant::now(),
                reply,
            })
            .map_err(|e| match e {
                mpsc::TrySendError::Full(_) => ServeError::Saturated,
                mpsc::TrySendError::Disconnected(_) => ServeError::ShuttingDown,
            })?;
        response.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// Submits the observed outcome of an earlier decision — the online-learning tick.
    /// Returns as soon as the feedback is enqueued; it is logged and applied when the
    /// worker's current round commits.
    pub fn feedback(&self, request_id: u64, feedback: PolicyFeedback) -> Result<()> {
        self.ingress
            .send(Request::Feedback {
                request_id,
                feedback,
            })
            .map_err(|_| ServeError::ShuttingDown)
    }

    /// Asks the worker to compact the decision log at the next round boundary and
    /// blocks for the stats. Fails typed when the server is degraded (the log is
    /// down), has no log, or the policy cannot checkpoint its state.
    pub fn compact(&self) -> Result<CompactionStats> {
        let (reply, response) = mpsc::channel();
        self.ingress
            .send(Request::Compact { reply })
            .map_err(|_| ServeError::ShuttingDown)?;
        response.recv().map_err(|_| ServeError::ShuttingDown)?
    }
}

/// A running decision service: one dedicated batch worker owning the policy and the
/// decision log, fed by any number of [`Client`] handles.
pub struct Server {
    ingress: SyncSender<Request>,
    worker: JoinHandle<(BoxedBatchedPolicy, ServeReport)>,
}

impl Server {
    /// Starts serving with a fresh history. When [`ServeConfig::log`] is set the log
    /// directory must not already contain segments ([`ServeError::LogNotEmpty`]) —
    /// continuing an existing history is [`Server::recover`]'s job.
    pub fn start(policy: BoxedBatchedPolicy, config: ServeConfig) -> Result<Server> {
        let log = match config.log.clone() {
            Some(log_config) => Some(DecisionLog::create(log_config)?),
            None => None,
        };
        Server::spawn(policy, config, log, ReplayedState::default())
    }

    /// Recovers a crashed server: repairs and replays the decision log against
    /// `policy` (which must be constructed exactly as the crashed server's policy was
    /// at its start), then resumes serving — bit-identical to a server that never
    /// crashed, appending to the same log.
    ///
    /// A compacted log recovers from its base image: the policy's checkpointed state
    /// at the cut is restored (`Policy::restore_state`), the pending requests and
    /// next id are seeded from the base, and only the segment suffix is replayed.
    /// The returned [`RecoveryReport::pending_requests`] hands back every
    /// acknowledged-but-unanswered request id with its context, so clients can resume
    /// feedback across the crash.
    pub fn recover(
        mut policy: BoxedBatchedPolicy,
        config: ServeConfig,
    ) -> Result<(Server, RecoveryReport)> {
        let Some(log_config) = config.log.clone() else {
            return Err(ServeError::Recovery {
                detail: "recovery needs a decision log, but the config has none".into(),
            });
        };
        let recovered = DecisionLog::recover(log_config)?;
        let mut state = ReplayedState::default();
        if let Some(base) = &recovered.base {
            // The compacted prefix exists only as the base image: restore the exact
            // policy state at the cut, then replay just the suffix on top of it.
            let mut r = StateReader::new(&base.policy);
            policy
                .restore_state(&mut r)
                .map_err(|e| ServeError::Recovery {
                    detail: format!("restoring the policy from the compaction base failed: {e}"),
                })?;
            r.finish("compaction base policy")
                .map_err(|e| ServeError::Recovery {
                    detail: e.to_string(),
                })?;
            state.next_request_id = base.next_request_id;
            state.pending = base.pending.iter().cloned().collect();
        }
        replay_records_into(policy.as_mut(), &recovered.records, &mut state)?;
        let report = RecoveryReport {
            replayed_decisions: state.decisions,
            replayed_feedbacks: state.feedbacks,
            replayed_degraded: state.degraded,
            pending_after_replay: state.pending_len(),
            pending_requests: state
                .pending
                .iter()
                .map(|(id, context)| (*id, context.clone()))
                .collect(),
            compacted_suffix_start: recovered.recovery.base,
            log: recovered.recovery,
        };
        let server = Server::spawn(policy, config, Some(recovered.log), state)?;
        Ok((server, report))
    }

    fn spawn(
        policy: BoxedBatchedPolicy,
        config: ServeConfig,
        log: Option<DecisionLog>,
        state: ReplayedState,
    ) -> Result<Server> {
        let (ingress, queue) = mpsc::sync_channel(config.queue_capacity.max(1));
        let worker = spawn_dedicated("serve-batch", move || {
            event_loop(policy, config, log, state, queue)
        })?;
        Ok(Server { ingress, worker })
    }

    /// A new submission handle; clone one per client thread.
    pub fn client(&self) -> Client {
        Client {
            ingress: self.ingress.clone(),
        }
    }

    /// Graceful shutdown: every request already queued (and anything that squeezes in
    /// ahead of the stop marker) is still decided, logged and acknowledged; an active
    /// outage gets one final heal attempt; the log is synced; the policy and the
    /// serving report come back.
    pub fn shutdown(self) -> (BoxedBatchedPolicy, ServeReport) {
        self.end(Request::Stop { drain: true })
    }

    /// Abrupt stop, simulating a crash as closely as an in-process stop can: the
    /// worker stops at the next round boundary without draining, and every queued or
    /// in-flight caller gets [`ServeError::ShuttingDown`]. Acknowledged work is
    /// already durable (the ack barrier), so a [`Server::recover`] of the same log
    /// continues exactly where the acks stopped. A kill during a log outage drops the
    /// in-memory backlog — exactly what a real crash would do.
    pub fn kill(self) -> (BoxedBatchedPolicy, ServeReport) {
        self.end(Request::Stop { drain: false })
    }

    fn end(self, stop: Request) -> (BoxedBatchedPolicy, ServeReport) {
        // Queue full is fine: send blocks until the worker drains a round. A closed
        // channel means the worker already stopped — just join.
        let _ = self.ingress.send(stop);
        drop(self.ingress);
        match self.worker.join() {
            Ok(result) => result,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

/// One micro-batch round being assembled.
#[derive(Default)]
struct Round {
    decides: Vec<(ArrivalContext, Instant, mpsc::Sender<Result<ServeDecision>>)>,
    feedbacks: Vec<(u64, PolicyFeedback)>,
    compacts: Vec<mpsc::Sender<Result<CompactionStats>>>,
}

impl Round {
    fn is_empty(&self) -> bool {
        self.decides.is_empty() && self.feedbacks.is_empty() && self.compacts.is_empty()
    }
}

/// How a drained stop marker asks the loop to finish.
#[derive(Clone, Copy, PartialEq)]
enum StopMode {
    Drain,
    Kill,
}

fn absorb(message: Request, round: &mut Round, stop: &mut Option<StopMode>) {
    match message {
        Request::Decide {
            context,
            enqueued,
            reply,
        } => round.decides.push((context, enqueued, reply)),
        Request::Feedback {
            request_id,
            feedback,
        } => round.feedbacks.push((request_id, feedback)),
        Request::Compact { reply } => round.compacts.push(reply),
        Request::Stop { drain } => {
            *stop = Some(if drain {
                StopMode::Drain
            } else {
                StopMode::Kill
            })
        }
    }
}

/// A log outage in progress: the worker is degraded and shedding load.
struct Outage {
    /// Records of the round whose append failed. The policy already executed them, so
    /// they must reach the log before anything else — log order is execution order.
    backlog: Vec<LogRecord>,
    /// Rendered cause of the most recent failure, echoed in `Degraded` replies.
    detail: String,
    /// Decide requests shed (answered `Degraded`) since the outage began.
    shed_decides: u64,
    /// Feedback submissions dropped since the outage began.
    shed_feedbacks: u64,
}

/// Everything the batch worker owns: the policy, the log, the replayed state and the
/// counters. Only its thread ever touches any of it.
struct Worker {
    policy: BoxedBatchedPolicy,
    config: ServeConfig,
    log: Option<DecisionLog>,
    state: ReplayedState,
    report: ServeReport,
    scratch: Vec<Decision>,
    outage: Option<Outage>,
}

impl Worker {
    /// Commits one round: the queued feedback ticks first (freshest parameters for
    /// the round's decisions), then one packed forward pass, then one durable
    /// group-commit append, then the acks — in that order (see the module docs).
    ///
    /// Feedbacks-before-decisions is a determinism decision, not an accident: a
    /// feedback was necessarily enqueued *before* any decide it shares a round with
    /// (FIFO queue), so applying it first means the execution order — and therefore
    /// the log — depends only on the order requests entered the queue, never on where
    /// the batch boundaries happened to fall.
    ///
    /// Never returns an error: a log failure puts the worker into degraded mode
    /// (shedding with typed [`ServeError::Degraded`] replies) instead of stopping it.
    fn commit_round(&mut self, mut round: Round) {
        let compacts = std::mem::take(&mut round.compacts);
        if round.is_empty() && compacts.is_empty() {
            return;
        }

        // Staleness shedding: a decide that sat in the queue past the bound is
        // answered `Degraded` without touching the policy (no log marker needed —
        // nothing executed).
        if let Some(bound) = self.config.shed_staler_than {
            let now = Instant::now();
            let (fresh, stale): (Vec<_>, Vec<_>) = round
                .decides
                .drain(..)
                .partition(|(_, enqueued, _)| now.saturating_duration_since(*enqueued) <= bound);
            round.decides = fresh;
            for (_, _, reply) in stale {
                self.report.shed_decides += 1;
                let _ = reply.send(Err(ServeError::Degraded {
                    detail: format!("request waited past the staleness bound ({bound:?})"),
                }));
            }
        }

        // An active outage: try to heal before this round; still down means the whole
        // round is shed without touching the policy.
        if self.outage.is_some() && !self.try_heal() {
            let n_decides = round.decides.len() as u64;
            let n_feedbacks = round.feedbacks.len() as u64;
            let outage = self.outage.as_mut().expect("outage is active");
            outage.shed_decides += n_decides;
            outage.shed_feedbacks += n_feedbacks;
            let detail = outage.detail.clone();
            self.report.shed_decides += n_decides;
            self.report.shed_feedbacks += n_feedbacks;
            if n_decides + n_feedbacks > 0 {
                self.report.degraded_rounds += 1;
            }
            for (_, _, reply) in round.decides {
                let _ = reply.send(Err(ServeError::Degraded {
                    detail: detail.clone(),
                }));
            }
            self.handle_compacts(compacts);
            return;
        }

        if round.is_empty() {
            self.handle_compacts(compacts);
            return;
        }
        self.report.rounds += 1;
        self.report.max_round_decisions = self.report.max_round_decisions.max(round.decides.len());

        let mut records = Vec::with_capacity(round.decides.len() + round.feedbacks.len());

        // 1. Online-learning ticks, in arrival order, before the round's decisions.
        for (request_id, feedback) in round.feedbacks {
            match self.state.pending.remove(&request_id) {
                Some(context) => {
                    self.policy.observe(&context.view(), &feedback.view());
                    self.report.feedbacks += 1;
                    records.push(LogRecord::Feedback {
                        request_id,
                        feedback,
                    });
                }
                None => self.report.unknown_feedbacks += 1,
            }
        }

        // 2. One act_batch over every arrival of the round.
        self.scratch.resize_with(round.decides.len(), Decision::new);
        {
            let views: Vec<_> = round.decides.iter().map(|(ctx, _, _)| ctx.view()).collect();
            self.policy.act_batch(&views, &mut self.scratch[..]);
        }

        // 3. Assign ids and build the decision records in commit order.
        let mut acks = Vec::with_capacity(round.decides.len());
        for ((context, _, reply), decision) in round.decides.into_iter().zip(self.scratch.iter()) {
            let request_id = self.state.next_request_id;
            self.state.next_request_id += 1;
            let served = ServeDecision {
                request_id,
                shown: decision.shown().to_vec(),
                assignment: decision.is_assignment(),
            };
            records.push(LogRecord::Decision {
                request_id,
                context: context.clone(),
                shown: served.shown.clone(),
                assignment: served.assignment,
            });
            self.state.pending.insert(request_id, context);
            acks.push((reply, served));
        }

        // 4. Group commit: the whole round becomes durable before anyone is told
        // anything. A failure past the bounded retries enters degraded mode: the
        // records are already executed, so they become the outage backlog, and the
        // clients are told to retry (their retry is a fresh request — nothing is
        // lost or duplicated).
        if let Some(log) = self.log.as_mut() {
            if let Err(e) = log.append_retrying(&records) {
                let detail = e.to_string();
                for (reply, _) in acks {
                    self.report.shed_decides += 1;
                    let _ = reply.send(Err(ServeError::Degraded {
                        detail: detail.clone(),
                    }));
                }
                self.report.degraded_rounds += 1;
                self.outage = Some(Outage {
                    backlog: records,
                    detail,
                    shed_decides: 0,
                    shed_feedbacks: 0,
                });
                self.handle_compacts(compacts);
                return;
            }
        }

        // 5. Acks (a vanished caller is not an error).
        for (reply, served) in acks {
            let _ = reply.send(Ok(served));
            self.report.decisions += 1;
        }
        self.handle_compacts(compacts);
    }

    /// Attempts to end an active outage: the backlog plus a [`LogRecord::Degraded`]
    /// marker (counting everything shed while degraded) go to the log in one batch,
    /// keeping record order equal to execution order. True when the log is healthy.
    fn try_heal(&mut self) -> bool {
        let Some(outage) = self.outage.as_ref() else {
            return true;
        };
        let Some(log) = self.log.as_mut() else {
            return true;
        };
        let mut records = outage.backlog.clone();
        records.push(LogRecord::Degraded {
            shed_decides: outage.shed_decides,
            shed_feedbacks: outage.shed_feedbacks,
        });
        match log.append_retrying(&records) {
            Ok(()) => {
                self.outage = None;
                self.report.healed += 1;
                true
            }
            Err(e) => {
                self.outage.as_mut().expect("outage is active").detail = e.to_string();
                false
            }
        }
    }

    /// Answers the round's explicit compaction requests.
    fn handle_compacts(&mut self, compacts: Vec<mpsc::Sender<Result<CompactionStats>>>) {
        for reply in compacts {
            let result = match &self.outage {
                Some(outage) => Err(ServeError::Degraded {
                    detail: outage.detail.clone(),
                }),
                None => self.compact_now(),
            };
            let _ = reply.send(result);
        }
    }

    /// Compacts the log at the current round boundary: the policy's checkpointed
    /// state, the pending requests and the next id become the base image.
    fn compact_now(&mut self) -> Result<CompactionStats> {
        let Some(log) = self.log.as_mut() else {
            return Err(ServeError::Log {
                detail: "compaction needs a decision log, but the server has none".into(),
            });
        };
        let mut w = StateWriter::new();
        self.policy.checkpoint_state(&mut w)?;
        let pending: Vec<(u64, ArrivalContext)> = self
            .state
            .pending
            .iter()
            .map(|(id, context)| (*id, context.clone()))
            .collect();
        let stats = log.compact(self.state.next_request_id, pending, w.into_bytes())?;
        self.report.compactions += 1;
        Ok(stats)
    }

    /// Auto-compaction after a committed round, when configured and healthy. The
    /// first failure disables it for the rest of the run (recorded in
    /// [`ServeReport::compact_error`]) — compaction is an optimisation, not a
    /// correctness requirement, so serving continues.
    fn maybe_auto_compact(&mut self) {
        if self.outage.is_some() || self.report.compact_error.is_some() {
            return;
        }
        let Some(limit) = self.config.compact_after_segments else {
            return;
        };
        let Some(log) = self.log.as_ref() else {
            return;
        };
        if log.live_segments() <= limit {
            return;
        }
        if let Err(e) = self.compact_now() {
            self.report.compact_error = Some(e.to_string());
        }
    }

    /// Ends the worker. A graceful drain makes one final heal attempt for an active
    /// outage; a kill drops the backlog (crash semantics). Whatever still cannot
    /// reach the log is reported in [`ServeReport::log_error`].
    fn finish(mut self, drain: bool) -> (BoxedBatchedPolicy, ServeReport) {
        if self.outage.is_some() && (!drain || !self.try_heal()) {
            let outage = self.outage.as_ref().expect("outage is active");
            self.report.log_error = Some(outage.detail.clone());
        }
        if let Some(log) = self.log.as_mut() {
            if let Err(e) = log.sync() {
                self.report.log_error.get_or_insert(e.to_string());
            }
            self.report.log_batches = log.batches();
            self.report.log_rotations = log.rotations();
        }
        (self.policy, self.report)
    }
}

/// The batch worker: the only thread that ever touches the policy or the log.
fn event_loop(
    mut policy: BoxedBatchedPolicy,
    config: ServeConfig,
    log: Option<DecisionLog>,
    state: ReplayedState,
    queue: Receiver<Request>,
) -> (BoxedBatchedPolicy, ServeReport) {
    policy.set_thread_pool(config.pool);
    let max_batch = config.max_batch.max(1);
    let batch_window = config.batch_window;
    let mut worker = Worker {
        policy,
        config,
        log,
        state,
        report: ServeReport::default(),
        scratch: Vec::new(),
        outage: None,
    };
    let mut drain = true;

    'serve: loop {
        // Block for the first request of a round, then coalesce.
        let first = match queue.recv() {
            Ok(message) => message,
            Err(_) => break, // every handle dropped: nothing can arrive anymore
        };
        let mut round = Round::default();
        let mut stop = None;
        absorb(first, &mut round, &mut stop);
        if stop.is_none() {
            let deadline = Instant::now() + batch_window;
            while round.decides.len() < max_batch && stop.is_none() {
                let message = match deadline.checked_duration_since(Instant::now()) {
                    Some(wait) if !wait.is_zero() => match queue.recv_timeout(wait) {
                        Ok(message) => message,
                        Err(_) => break,
                    },
                    _ => match queue.try_recv() {
                        Ok(message) => message,
                        Err(_) => break,
                    },
                };
                absorb(message, &mut round, &mut stop);
            }
        }

        if stop == Some(StopMode::Kill) {
            // Crash semantics: nothing in this round was acknowledged, so none of it
            // happened. Dropped reply senders surface as `ShuttingDown` at the
            // caller, and an outage backlog dies with the process.
            drain = false;
            break 'serve;
        }
        worker.commit_round(round);
        worker.maybe_auto_compact();
        if stop == Some(StopMode::Drain) {
            loop {
                let mut tail = Round::default();
                let mut _late_stop = None;
                while tail.decides.len() < max_batch {
                    match queue.try_recv() {
                        Ok(message) => absorb(message, &mut tail, &mut _late_stop),
                        Err(_) => break,
                    }
                }
                if tail.is_empty() {
                    break;
                }
                worker.commit_round(tail);
            }
            break 'serve;
        }
    }

    worker.finish(drain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogConfig;
    use crowd_ckpt::{FaultPlan, Fs};
    use crowd_sim::{ArrivalView, FeedbackView, Policy, TaskSnapshot, WorkerId};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Deterministic test policy: ranks tasks by descending id, counts calls through
    /// shared atomics (the box disappears into the worker thread).
    struct CountingPolicy {
        acts: Arc<AtomicU64>,
        observes: Arc<AtomicU64>,
    }

    impl CountingPolicy {
        fn new() -> (Self, Arc<AtomicU64>, Arc<AtomicU64>) {
            let acts = Arc::new(AtomicU64::new(0));
            let observes = Arc::new(AtomicU64::new(0));
            (
                CountingPolicy {
                    acts: acts.clone(),
                    observes: observes.clone(),
                },
                acts,
                observes,
            )
        }
    }

    impl Policy for CountingPolicy {
        fn name(&self) -> &str {
            "counting"
        }
        fn act(&mut self, view: &ArrivalView<'_>, decision: &mut Decision) {
            self.acts.fetch_add(1, Ordering::SeqCst);
            decision.clear();
            let mut ids: Vec<TaskId> = (0..view.n_tasks()).map(|i| view.task_id(i)).collect();
            ids.sort_by_key(|id| std::cmp::Reverse(id.0));
            decision.extend(ids);
        }
        fn observe(&mut self, _view: &ArrivalView<'_>, _feedback: &FeedbackView<'_>) {
            self.observes.fetch_add(1, Ordering::SeqCst);
        }
    }

    impl BatchedPolicy for CountingPolicy {}

    fn context(tag: u32, n_tasks: u32) -> ArrivalContext {
        ArrivalContext {
            time: tag as u64,
            worker_id: WorkerId(tag),
            worker_feature: vec![tag as f32],
            worker_quality: 0.5,
            is_new_worker: false,
            available: (0..n_tasks)
                .map(|i| TaskSnapshot {
                    id: TaskId(100 * tag + i),
                    feature: vec![i as f32],
                    quality: 0.0,
                    award: 1.0,
                    category: 0,
                    domain: 0,
                    deadline: 10,
                    completions: 0,
                })
                .collect(),
        }
    }

    fn feedback_for(context: &ArrivalContext, decision: &ServeDecision) -> PolicyFeedback {
        PolicyFeedback {
            time: context.time,
            worker_id: context.worker_id,
            worker_quality: context.worker_quality,
            shown: decision.shown.clone(),
            completed: decision.shown.first().map(|&t| (t, 0)),
            quality_gain: 0.25,
            worker_feature_before: context.worker_feature.clone(),
            worker_feature_after: context.worker_feature.clone(),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("crowd-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn decide_feedback_shutdown_roundtrip() {
        let (policy, acts, observes) = CountingPolicy::new();
        let server = Server::start(Box::new(policy), ServeConfig::default()).unwrap();
        let client = server.client();

        let ctx = context(1, 3);
        let decision = client.decide(ctx.clone()).unwrap();
        assert_eq!(decision.request_id, 0);
        assert_eq!(
            decision.shown,
            vec![TaskId(102), TaskId(101), TaskId(100)],
            "descending-id ranking expected"
        );
        client
            .feedback(decision.request_id, feedback_for(&ctx, &decision))
            .unwrap();
        let second = client.decide(context(2, 1)).unwrap();
        assert_eq!(second.request_id, 1);

        let (_policy, report) = server.shutdown();
        assert_eq!(report.decisions, 2);
        assert_eq!(report.feedbacks, 1);
        assert_eq!(report.unknown_feedbacks, 0);
        assert_eq!(acts.load(Ordering::SeqCst), 2);
        assert_eq!(observes.load(Ordering::SeqCst), 1);
        assert!(report.log_error.is_none());
    }

    #[test]
    fn unknown_feedback_is_counted_not_applied() {
        let (policy, _acts, observes) = CountingPolicy::new();
        let server = Server::start(Box::new(policy), ServeConfig::default()).unwrap();
        let client = server.client();
        let ctx = context(1, 1);
        let d = client.decide(ctx.clone()).unwrap();
        client
            .feedback(d.request_id, feedback_for(&ctx, &d))
            .unwrap();
        // Same id again: already consumed.
        client
            .feedback(d.request_id, feedback_for(&ctx, &d))
            .unwrap();
        client.feedback(777, feedback_for(&ctx, &d)).unwrap();
        let (_policy, report) = server.shutdown();
        assert_eq!(report.feedbacks, 1);
        assert_eq!(report.unknown_feedbacks, 2);
        assert_eq!(observes.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn log_records_commit_order_and_replay_reconstructs_state() {
        let dir = tmp_dir("unit-log");
        let config = ServeConfig {
            log: Some(LogConfig::new(&dir)),
            ..ServeConfig::default()
        };
        let (policy, ..) = CountingPolicy::new();
        let server = Server::start(Box::new(policy), config.clone()).unwrap();
        let client = server.client();

        let contexts: Vec<_> = (0..4).map(|i| context(i, 2 + i)).collect();
        let mut decisions = Vec::new();
        for ctx in &contexts {
            let d = client.decide(ctx.clone()).unwrap();
            if d.request_id.is_multiple_of(2) {
                client
                    .feedback(d.request_id, feedback_for(ctx, &d))
                    .unwrap();
            }
            decisions.push(d);
        }
        let (_policy, report) = server.shutdown();
        assert_eq!(report.decisions, 4);
        assert_eq!(report.feedbacks, 2);
        assert!(report.log_batches >= 1);

        let records = DecisionLog::read(&dir).unwrap();
        assert_eq!(records.len(), 6);
        // Ids are strictly increasing across decision records.
        let logged_ids: Vec<u64> = records
            .iter()
            .filter(|r| matches!(r, LogRecord::Decision { .. }))
            .filter_map(LogRecord::request_id)
            .collect();
        assert_eq!(logged_ids, vec![0, 1, 2, 3]);

        // A fresh policy replays to the same state the server held.
        let (mut fresh, ..) = CountingPolicy::new();
        let state = replay_records(&mut fresh, &records).unwrap();
        assert_eq!(state.next_request_id, 4);
        assert_eq!(state.decisions, 4);
        assert_eq!(state.feedbacks, 2);
        assert_eq!(state.pending_len(), 2); // odd ids never got feedback

        // And a recovered server keeps serving with continuing ids, handing back the
        // pending request ids (the request-id ⇄ client handshake).
        let (policy, ..) = CountingPolicy::new();
        let (server, recovery) = Server::recover(Box::new(policy), config).unwrap();
        assert_eq!(recovery.replayed_decisions, 4);
        assert_eq!(recovery.replayed_feedbacks, 2);
        assert_eq!(recovery.pending_after_replay, 2);
        let pending_ids: Vec<u64> = recovery
            .pending_requests
            .iter()
            .map(|(id, _)| *id)
            .collect();
        assert_eq!(pending_ids, vec![1, 3]);
        assert_eq!(recovery.pending_requests[0].1, contexts[1]);
        assert_eq!(recovery.compacted_suffix_start, None);
        let d = server.client().decide(context(9, 1)).unwrap();
        assert_eq!(d.request_id, 4);
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn start_refuses_an_existing_log_and_recover_requires_one() {
        let dir = tmp_dir("unit-refuse");
        let config = ServeConfig {
            log: Some(LogConfig::new(&dir)),
            ..ServeConfig::default()
        };
        let (policy, ..) = CountingPolicy::new();
        let server = Server::start(Box::new(policy), config.clone()).unwrap();
        server.client().decide(context(0, 1)).unwrap();
        server.shutdown();

        let (policy, ..) = CountingPolicy::new();
        assert!(matches!(
            Server::start(Box::new(policy), config),
            Err(ServeError::LogNotEmpty { .. })
        ));
        let (policy, ..) = CountingPolicy::new();
        assert!(matches!(
            Server::recover(Box::new(policy), ServeConfig::default()),
            Err(ServeError::Recovery { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_rejects_divergence_and_unknown_feedback() {
        let ctx = context(1, 2);
        let records = vec![LogRecord::Decision {
            request_id: 0,
            context: ctx.clone(),
            shown: vec![TaskId(100), TaskId(101)], // ascending: not what the policy does
            assignment: false,
        }];
        let (mut policy, ..) = CountingPolicy::new();
        assert!(matches!(
            replay_records(&mut policy, &records),
            Err(ServeError::Recovery { .. })
        ));

        let records = vec![LogRecord::Feedback {
            request_id: 3,
            feedback: feedback_for(
                &ctx,
                &ServeDecision {
                    request_id: 3,
                    shown: vec![TaskId(100)],
                    assignment: false,
                },
            ),
        }];
        let (mut policy, ..) = CountingPolicy::new();
        assert!(matches!(
            replay_records(&mut policy, &records),
            Err(ServeError::Recovery { .. })
        ));
    }

    #[test]
    fn concurrent_clients_all_get_answers_and_ids_are_unique() {
        let (policy, ..) = CountingPolicy::new();
        let config = ServeConfig {
            max_batch: 4,
            ..ServeConfig::default()
        };
        let server = Server::start(Box::new(policy), config).unwrap();

        let mut handles = Vec::new();
        for t in 0..6u32 {
            let client = server.client();
            handles.push(std::thread::spawn(move || {
                (0..20u32)
                    .map(|i| client.decide(context(1000 * t + i, 2)).unwrap().request_id)
                    .collect::<Vec<u64>>()
            }));
        }
        let mut ids: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 120, "every request got a unique id");
        let (_policy, report) = server.shutdown();
        assert_eq!(report.decisions, 120);
        assert!(report.max_round_decisions <= 4, "max_batch respected");
    }

    #[test]
    fn kill_answers_nobody_late_and_acked_work_is_durable() {
        let dir = tmp_dir("unit-kill");
        let config = ServeConfig {
            log: Some(LogConfig::new(&dir)),
            ..ServeConfig::default()
        };
        let (policy, ..) = CountingPolicy::new();
        let server = Server::start(Box::new(policy), config).unwrap();
        let client = server.client();
        let acked = client.decide(context(0, 1)).unwrap();
        let (_policy, report) = server.kill();
        assert_eq!(report.decisions, 1);
        // The acked decision survived the "crash".
        let records = DecisionLog::read(&dir).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].request_id(), Some(acked.request_id));
        // The dead server refuses new work.
        assert!(matches!(
            client.decide(context(1, 1)),
            Err(ServeError::ShuttingDown)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_log_outage_degrades_heals_and_marks_the_log() {
        // Phase 1: learn the op index where round 2's I/O starts, on a clean
        // injected fs (same plan shape, no faults).
        let dir = tmp_dir("unit-degrade-probe");
        let (fs, probe) = Fs::faulty(FaultPlan::none());
        let mut log_config = LogConfig::new(&dir);
        log_config.fs = fs;
        let (policy, ..) = CountingPolicy::new();
        let config = ServeConfig {
            log: Some(log_config),
            ..ServeConfig::default()
        };
        let server = Server::start(Box::new(policy), config).unwrap();
        let client = server.client();
        client.decide(context(0, 1)).unwrap();
        let round2_start = probe.ops();
        server.kill();
        std::fs::remove_dir_all(&dir).unwrap();

        // Phase 2: everything in a 12-op window starting at round 2 fails. Round 1
        // commits cleanly; round 2's append exhausts its retries and the server goes
        // degraded (its records become the backlog); later rounds shed until the
        // window passes, then the heal appends backlog + marker and serving resumes.
        let dir = tmp_dir("unit-degrade");
        let (fs, _probe) = Fs::faulty(FaultPlan::fail_ops(round2_start, round2_start + 12, None));
        let mut log_config = LogConfig::new(&dir);
        log_config.fs = fs;
        let (policy, ..) = CountingPolicy::new();
        let config = ServeConfig {
            log: Some(log_config),
            ..ServeConfig::default()
        };
        let server = Server::start(Box::new(policy), config).unwrap();
        let client = server.client();

        client.decide(context(0, 1)).unwrap();
        let degraded = client.decide(context(1, 1)).unwrap_err();
        assert!(
            matches!(degraded, ServeError::Degraded { .. }),
            "{degraded}"
        );
        // Keep retrying until the outage window passes and the server heals.
        let mut healed_decision = None;
        for attempt in 0..32 {
            match client.decide(context(100 + attempt, 1)) {
                Ok(d) => {
                    healed_decision = Some(d);
                    break;
                }
                Err(ServeError::Degraded { .. }) => continue,
                Err(other) => panic!("unexpected error while degraded: {other}"),
            }
        }
        let healed_decision = healed_decision.expect("server never healed");
        // Ids never fork: round 2's decision executed (id 1) even though its client
        // was told to retry, so the first post-heal decision is id 2 or later.
        assert!(healed_decision.request_id >= 2);

        let (_policy, report) = server.shutdown();
        assert!(report.log_error.is_none(), "{:?}", report.log_error);
        assert_eq!(report.healed, 1);
        assert!(report.degraded_rounds >= 1);
        assert!(report.shed_decides >= 1);

        // The log carries the backlog and exactly one degraded marker, and replays.
        let records = DecisionLog::read(&dir).unwrap();
        let markers: Vec<_> = records
            .iter()
            .filter(|r| matches!(r, LogRecord::Degraded { .. }))
            .collect();
        assert_eq!(markers.len(), 1);
        let (mut fresh, ..) = CountingPolicy::new();
        let state = replay_records(&mut fresh, &records).unwrap();
        assert_eq!(state.degraded, 1);
        assert_eq!(state.next_request_id, healed_decision.request_id + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn staleness_bound_sheds_without_touching_the_policy() {
        let (policy, acts, _observes) = CountingPolicy::new();
        let config = ServeConfig {
            // The lone request waits out the full batch window (no co-batched
            // neighbours arrive), far past the staleness bound.
            batch_window: Duration::from_millis(200),
            shed_staler_than: Some(Duration::from_millis(20)),
            ..ServeConfig::default()
        };
        let server = Server::start(Box::new(policy), config).unwrap();
        let err = server.client().decide(context(0, 1)).unwrap_err();
        assert!(matches!(err, ServeError::Degraded { .. }), "{err}");
        let (_policy, report) = server.shutdown();
        assert_eq!(report.shed_decides, 1);
        assert_eq!(report.decisions, 0);
        assert_eq!(acts.load(Ordering::SeqCst), 0, "shed request never acted");
    }

    #[test]
    fn compaction_without_checkpoint_support_fails_typed_and_serving_continues() {
        let dir = tmp_dir("unit-compact-unsupported");
        let config = ServeConfig {
            log: Some(LogConfig::new(&dir)),
            compact_after_segments: Some(1),
            ..ServeConfig::default()
        };
        let (policy, ..) = CountingPolicy::new();
        let server = Server::start(Box::new(policy), config).unwrap();
        let client = server.client();
        client.decide(context(0, 1)).unwrap();
        // Explicit compaction: CountingPolicy has no checkpoint support.
        let err = client.compact().unwrap_err();
        assert!(matches!(err, ServeError::Log { .. }), "{err}");
        // Serving continues regardless.
        client.decide(context(1, 1)).unwrap();
        let (_policy, report) = server.shutdown();
        assert_eq!(report.decisions, 2);
        assert_eq!(report.compactions, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
