//! Client-side self-healing: bounded exponential backoff against a saturated or
//! degraded server.
//!
//! [`ServeError::Saturated`] and [`ServeError::Degraded`] share one crucial property:
//! the rejected request had **no effect** on the policy or the log, so resubmitting it
//! is a fresh request — nothing can be lost or duplicated by retrying. That makes a
//! dumb sleep-and-retry loop *correct*; [`RetryPolicy`] merely bounds it (exponential
//! backoff capped per attempt, a deadline overall) so a dead server turns into a typed
//! error instead of a hang.

use crate::error::{Result, ServeError};
use crate::server::{Client, ServeDecision};
use crowd_sim::ArrivalContext;
use std::time::{Duration, Instant};

/// Bounds for [`Client::decide_with_retry`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Sleep before the first retry; doubles on every subsequent one.
    pub initial_backoff: Duration,
    /// Per-attempt cap on the backoff sleep.
    pub max_backoff: Duration,
    /// Total budget: once this much time has elapsed since the first attempt, the
    /// last transient error is returned instead of sleeping again.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            initial_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(10),
            deadline: Duration::from_secs(1),
        }
    }
}

impl Client {
    /// [`Client::try_decide`] wrapped in bounded exponential backoff: transient
    /// rejections ([`ServeError::Saturated`] — ingress full — and
    /// [`ServeError::Degraded`] — log outage or staleness shed) are retried until
    /// `retry.deadline` elapses; every other error (and deadline exhaustion) returns
    /// the underlying error unchanged.
    ///
    /// Each retry is a *fresh* request — the server guarantees a rejected request
    /// never touched the policy — so a successful return means exactly one decision
    /// was made and logged for this call, however many attempts it took.
    pub fn decide_with_retry(
        &self,
        context: &ArrivalContext,
        retry: &RetryPolicy,
    ) -> Result<ServeDecision> {
        let started = Instant::now();
        let mut backoff = retry.initial_backoff.max(Duration::from_micros(1));
        loop {
            let error = match self.try_decide(context) {
                Ok(decision) => return Ok(decision),
                Err(e @ (ServeError::Saturated | ServeError::Degraded { .. })) => e,
                Err(e) => return Err(e),
            };
            let Some(budget) = retry.deadline.checked_sub(started.elapsed()) else {
                return Err(error);
            };
            if budget.is_zero() {
                return Err(error);
            }
            std::thread::sleep(backoff.min(budget));
            backoff = (backoff * 2).min(retry.max_backoff.max(Duration::from_micros(1)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_bounded_and_ordered() {
        let retry = RetryPolicy::default();
        assert!(retry.initial_backoff <= retry.max_backoff);
        assert!(retry.max_backoff < retry.deadline);
    }
}
