//! The serving layer's error surface.
//!
//! Errors cross thread boundaries here (the batch worker replies to many waiting
//! clients), so [`ServeError`] is `Clone` — durability failures carry their detail as a
//! rendered string rather than the underlying [`crowd_ckpt::CkptError`].

use std::fmt;
use std::path::PathBuf;

/// Result alias for every fallible serving operation.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Everything that can go wrong submitting to, running or recovering a decision server.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// The bounded ingress queue is full ([`Client::try_decide`] only — the blocking
    /// submit paths wait instead; this is the backpressure contract surfacing).
    ///
    /// [`Client::try_decide`]: crate::Client::try_decide
    Saturated,
    /// The server is shedding load instead of wedging: the decision log is failing
    /// after bounded retries, or the request waited in the ingress queue past the
    /// configured staleness bound. The request had **no effect** on the policy —
    /// retrying it later ([`Client::decide_with_retry`] does so automatically) is a
    /// fresh request, so nothing is lost or duplicated.
    ///
    /// [`Client::decide_with_retry`]: crate::Client::decide_with_retry
    Degraded {
        /// Why the server is degraded (log outage detail or staleness shed).
        detail: String,
    },
    /// The server stopped (shutdown, kill or an earlier fatal error) before this
    /// request could be accepted or answered.
    ShuttingDown,
    /// [`Server::start`] found existing segments in the log directory — starting fresh
    /// over a previous run's log would fork history; use [`Server::recover`].
    ///
    /// [`Server::start`]: crate::Server::start
    /// [`Server::recover`]: crate::Server::recover
    LogNotEmpty {
        /// The offending log directory.
        dir: PathBuf,
    },
    /// The decision log could not be written, synced, rotated or read.
    Log {
        /// Rendered cause (I/O error, CRC mismatch, corrupt framing, …).
        detail: String,
    },
    /// Log replay could not reconstruct the server state: the re-executed policy
    /// diverged from a logged decision, or the record sequence violates an invariant
    /// (non-monotonic request ids, feedback for an unknown request).
    Recovery {
        /// What diverged or which invariant broke.
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Saturated => write!(f, "ingress queue is full (server saturated)"),
            ServeError::Degraded { detail } => {
                write!(f, "server is degraded and shedding load: {detail}")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::LogNotEmpty { dir } => write!(
                f,
                "decision log directory {} already contains segments; recover instead of starting fresh",
                dir.display()
            ),
            ServeError::Log { detail } => write!(f, "decision log failure: {detail}"),
            ServeError::Recovery { detail } => write!(f, "decision log replay failed: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<crowd_ckpt::CkptError> for ServeError {
    fn from(e: crowd_ckpt::CkptError) -> Self {
        ServeError::Log {
            detail: e.to_string(),
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Log {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ServeError::Saturated.to_string().contains("full"));
        let e = ServeError::LogNotEmpty {
            dir: PathBuf::from("/tmp/x"),
        };
        assert!(e.to_string().contains("/tmp/x"));
        let e: ServeError = crowd_ckpt::CkptError::Unsupported { what: "p" }.into();
        assert!(matches!(e, ServeError::Log { .. }));
        assert!(ServeError::Recovery {
            detail: "act diverged".into()
        }
        .to_string()
        .contains("act diverged"));
    }
}
