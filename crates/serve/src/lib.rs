//! `crowd-serve` — an online micro-batching decision service with a durable,
//! replayable decision log.
//!
//! The paper's evaluation is offline: a [`crowd_sim`] `Session` replays a recorded
//! horizon through a policy one arrival at a time. This crate puts the same policies
//! behind a *serving* interface, the shape a crowdsourcing platform actually runs:
//! worker arrivals stream in concurrently from many client threads, and each one
//! needs a ranked task list back in sub-millisecond time.
//!
//! # Design
//!
//! - **Ingress** is a bounded [`std::sync::mpsc::sync_channel`]; no async runtime.
//!   The queue bound *is* the backpressure contract: blocking submitters slow to the
//!   drain rate, [`Client::try_decide`] fails fast with [`ServeError::Saturated`].
//! - **Micro-batching**: a single dedicated worker thread
//!   ([`crowd_parallel::spawn_dedicated`]) drains in-flight requests and coalesces
//!   them into one [`crowd_sim::BatchedPolicy::act_batch`] packed forward pass per
//!   round — amortising Q-network inference exactly the way
//!   `SessionBatch` amortises it offline. A dedicated thread is *not* a persistent-pool
//!   worker, so the packed pass's row-sharded kernels still parallelise across the
//!   pool from inside it (see `crowd-parallel`'s "Nesting" docs).
//! - **Durability**: every committed round is appended to a [`DecisionLog`] —
//!   CRC-framed record batches in rotated segments (the `crowd-ckpt` WAL layer,
//!   `docs/DECISION_LOG_FORMAT.md`) — *before* any client is acknowledged. A crashed
//!   server [`Server::recover`]s by re-executing the log against a freshly
//!   constructed policy and resumes bit-identical to a server that never crashed.
//! - **Online learning**: clients report outcomes through [`Client::feedback`]; the
//!   worker logs and applies them as `observe` ticks in commit order, so the policy
//!   keeps learning while it serves and replay reproduces the learning trajectory.
//! - **Self-healing**: a log failure past bounded retries degrades the server
//!   (shedding with typed [`ServeError::Degraded`] replies and a logged
//!   [`LogRecord::Degraded`] marker on heal) instead of wedging it;
//!   [`Client::decide_with_retry`] turns transient rejections into bounded
//!   exponential backoff; [`Client::compact`] (or
//!   [`ServeConfig::compact_after_segments`]) folds the replay prefix into a base
//!   image so recovery replays only a short suffix.
//!
//! # Example
//!
//! ```
//! use crowd_serve::{Server, ServeConfig};
//! use crowd_sim::{ArrivalContext, TaskId, TaskSnapshot, WorkerId};
//! # use crowd_sim::{ArrivalView, BatchedPolicy, Decision, FeedbackView, Policy};
//! # struct FirstTask;
//! # impl Policy for FirstTask {
//! #     fn name(&self) -> &str { "first-task" }
//! #     fn act(&mut self, view: &ArrivalView<'_>, decision: &mut Decision) {
//! #         decision.clear();
//! #         if view.n_tasks() > 0 { decision.push(view.task_id(0)); }
//! #     }
//! #     fn observe(&mut self, _: &ArrivalView<'_>, _: &FeedbackView<'_>) {}
//! # }
//! # impl BatchedPolicy for FirstTask {}
//!
//! let server = Server::start(Box::new(FirstTask), ServeConfig::default()).unwrap();
//! let client = server.client();
//! let context = ArrivalContext {
//!     time: 0,
//!     worker_id: WorkerId(7),
//!     worker_feature: vec![0.25; 4],
//!     worker_quality: 0.5,
//!     is_new_worker: false,
//!     available: vec![TaskSnapshot {
//!         id: TaskId(3),
//!         feature: vec![0.1; 4],
//!         quality: 0.0,
//!         award: 1.0,
//!         category: 0,
//!         domain: 0,
//!         deadline: 60,
//!         completions: 0,
//!     }],
//! };
//! let decision = client.decide(context).unwrap();
//! assert_eq!(decision.shown, vec![TaskId(3)]);
//! let (_policy, report) = server.shutdown();
//! assert_eq!(report.decisions, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod log;
pub mod retry;
pub mod server;
pub mod traffic;

pub use error::{Result, ServeError};
pub use log::{
    BaseImage, CompactionStats, DecisionLog, LogConfig, LogRecord, LogRecovery, RecoveredLog,
};
pub use retry::RetryPolicy;
pub use server::{
    replay_records, replay_records_into, Client, RecoveryReport, ReplayedState, ServeConfig,
    ServeDecision, ServeReport, Server,
};
pub use traffic::{ArrivalSchedule, TrafficPattern};
