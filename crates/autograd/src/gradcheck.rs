//! Numerical gradient checking utilities.
//!
//! Every op's analytic vector-Jacobian product is validated against central finite
//! differences. The helpers here are also exported so downstream crates (`crowd-nn`,
//! `crowd-rl-core`) can gradient-check full layers and the Q-network in their own tests.

use crate::graph::{Graph, VarId};
use crowd_tensor::Matrix;

/// Builds a scalar-valued computation from a set of leaf values.
///
/// The closure receives the graph plus the ids of the leaves (inserted in the order of
/// `inputs`) and must return the id of a `1 x 1` output node.
pub type ScalarFn = dyn Fn(&mut Graph, &[VarId]) -> VarId;

/// Result of a single gradient comparison.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Maximum absolute difference between analytic and numerical gradient entries.
    pub max_abs_diff: f32,
    /// Maximum relative difference (normalised by the larger magnitude, floored at 1e-3).
    pub max_rel_diff: f32,
}

impl GradCheckReport {
    /// True when both the absolute and relative differences fall under `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_diff < tol || self.max_rel_diff < tol
    }
}

/// Evaluates the scalar function at the given leaf values.
fn eval(f: &ScalarFn, inputs: &[Matrix]) -> f32 {
    let mut graph = Graph::new();
    let ids: Vec<VarId> = inputs.iter().map(|m| graph.leaf(m.clone())).collect();
    let out = f(&mut graph, &ids);
    graph.value(out).get(0, 0)
}

/// Compares the analytic gradient of `f` with central finite differences for the leaf at
/// `check_index`, perturbing each element by `epsilon`.
pub fn check_gradient(
    f: &ScalarFn,
    inputs: &[Matrix],
    check_index: usize,
    epsilon: f32,
) -> GradCheckReport {
    // Analytic gradient.
    let mut graph = Graph::new();
    let ids: Vec<VarId> = inputs.iter().map(|m| graph.leaf(m.clone())).collect();
    let out = f(&mut graph, &ids);
    graph.backward(out).expect("backward failed in gradcheck");
    let analytic = graph
        .grad(ids[check_index])
        .cloned()
        .unwrap_or_else(|| Matrix::zeros(inputs[check_index].rows(), inputs[check_index].cols()));

    // Numerical gradient via central differences.
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    let base = inputs[check_index].clone();
    for i in 0..base.len() {
        let mut plus = inputs.to_vec();
        let mut minus = inputs.to_vec();
        plus[check_index].as_mut_slice()[i] += epsilon;
        minus[check_index].as_mut_slice()[i] -= epsilon;
        let numerical = (eval(f, &plus) - eval(f, &minus)) / (2.0 * epsilon);
        let a = analytic.as_slice()[i];
        let abs = (a - numerical).abs();
        let denom = a.abs().max(numerical.abs()).max(1e-3);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(abs / denom);
    }
    GradCheckReport {
        max_abs_diff: max_abs,
        max_rel_diff: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_tensor::Rng;

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        Matrix::randn(rows, cols, &mut rng)
    }

    #[test]
    fn gradcheck_matmul_chain() {
        let f: Box<ScalarFn> = Box::new(|g, ids| {
            let prod = g.matmul(ids[0], ids[1]).unwrap();
            let act = g.relu(prod);
            g.squared_sum(act)
        });
        let inputs = vec![rand_mat(3, 4, 1), rand_mat(4, 2, 2)];
        for idx in 0..2 {
            let report = check_gradient(&f, &inputs, idx, 1e-2);
            assert!(report.passes(2e-2), "matmul chain input {idx}: {report:?}");
        }
    }

    #[test]
    fn gradcheck_softmax_attention_like_block() {
        // scores = softmax(X X^T); out = scores @ X; loss = sum(out^2).
        let f: Box<ScalarFn> = Box::new(|g, ids| {
            let x = ids[0];
            let xt = g.transpose(x);
            let scores = g.matmul(x, xt).unwrap();
            let scaled = g.scale(scores, 0.5);
            let attn = g.softmax_rows(scaled);
            let out = g.matmul(attn, x).unwrap();
            g.squared_sum(out)
        });
        let inputs = vec![rand_mat(4, 3, 7)];
        let report = check_gradient(&f, &inputs, 0, 1e-2);
        assert!(report.passes(5e-2), "attention block: {report:?}");
    }

    #[test]
    fn gradcheck_bias_and_mean() {
        let f: Box<ScalarFn> = Box::new(|g, ids| {
            let y = g.add_row_broadcast(ids[0], ids[1]).unwrap();
            let r = g.relu(y);
            g.mean(r)
        });
        let inputs = vec![rand_mat(5, 3, 11), rand_mat(1, 3, 12)];
        for idx in 0..2 {
            let report = check_gradient(&f, &inputs, idx, 1e-2);
            assert!(report.passes(2e-2), "bias/mean input {idx}: {report:?}");
        }
    }

    #[test]
    fn gradcheck_concat_slice_hadamard() {
        let f: Box<ScalarFn> = Box::new(|g, ids| {
            let cat = g.concat_cols(ids[0], ids[1]).unwrap();
            let left = g.slice_cols(cat, 0, 2).unwrap();
            let right = g.slice_cols(cat, 2, 4).unwrap();
            let prod = g.hadamard(left, right).unwrap();
            g.sum(prod)
        });
        let inputs = vec![rand_mat(3, 2, 21), rand_mat(3, 2, 22)];
        for idx in 0..2 {
            let report = check_gradient(&f, &inputs, idx, 1e-2);
            assert!(report.passes(2e-2), "concat/slice input {idx}: {report:?}");
        }
    }

    #[test]
    fn gradcheck_masked_mse() {
        let target = rand_mat(2, 3, 31);
        let mask = Matrix::from_vec(2, 3, vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0]).unwrap();
        let f: Box<ScalarFn> =
            Box::new(move |g, ids| g.masked_mse(ids[0], &target, &mask).unwrap());
        let inputs = vec![rand_mat(2, 3, 32)];
        let report = check_gradient(&f, &inputs, 0, 1e-2);
        assert!(report.passes(2e-2), "masked mse: {report:?}");
    }

    #[test]
    fn gradcheck_vstack_slice_rows_segment_pipeline() {
        // The packed-segment shape the learner uses: stack two unequal-height blocks,
        // slice each back out, run a softmax per segment and recombine.
        let f: Box<ScalarFn> = Box::new(|g, ids| {
            let packed = g.vstack(&[ids[0], ids[1]]).unwrap();
            let top = g.slice_rows(packed, 0, 2).unwrap();
            let bottom = g.slice_rows(packed, 2, 5).unwrap();
            let s_top = g.softmax_rows(top);
            let s_bottom = g.softmax_rows(bottom);
            let mixed = g.vstack(&[s_bottom, s_top]).unwrap();
            let prod = g.hadamard(mixed, mixed).unwrap();
            g.sum(prod)
        });
        let inputs = vec![rand_mat(2, 3, 51), rand_mat(3, 3, 52)];
        for idx in 0..2 {
            let report = check_gradient(&f, &inputs, idx, 1e-2);
            assert!(
                report.passes(2e-2),
                "vstack/slice_rows input {idx}: {report:?}"
            );
        }
    }

    #[test]
    fn gradcheck_weighted_masked_mse() {
        let target = rand_mat(5, 1, 61);
        let mask = Matrix::from_vec(5, 1, vec![1.0, 0.0, 1.0, 0.0, 1.0]).unwrap();
        let weights = Matrix::from_vec(5, 1, vec![0.9, 0.0, 0.4, 0.0, 1.0]).unwrap();
        let f: Box<ScalarFn> = Box::new(move |g, ids| {
            g.weighted_masked_mse(ids[0], &target, &mask, &weights, 3.0)
                .unwrap()
        });
        let inputs = vec![rand_mat(5, 1, 62)];
        let report = check_gradient(&f, &inputs, 0, 1e-2);
        assert!(report.passes(2e-2), "weighted masked mse: {report:?}");
    }

    #[test]
    fn gradcheck_sub_scale_shift() {
        let f: Box<ScalarFn> = Box::new(|g, ids| {
            let d = g.sub(ids[0], ids[1]).unwrap();
            let s = g.scale(d, -1.7);
            let sh = g.shift(s, 0.3);
            g.squared_sum(sh)
        });
        let inputs = vec![rand_mat(2, 2, 41), rand_mat(2, 2, 42)];
        for idx in 0..2 {
            let report = check_gradient(&f, &inputs, idx, 1e-2);
            assert!(
                report.passes(2e-2),
                "sub/scale/shift input {idx}: {report:?}"
            );
        }
    }
}
