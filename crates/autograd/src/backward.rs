//! The reverse sweep: vector-Jacobian products for every [`crate::op::Op`].

use crate::graph::{Graph, VarId};
use crate::op::Op;
use crate::Result;
use crowd_tensor::Matrix;

/// Accumulates `delta` into the gradient slot of `id`.
fn accumulate(graph: &mut Graph, id: VarId, delta: Matrix) -> Result<()> {
    match &mut graph.grads[id.0] {
        Some(existing) => existing.add_assign(&delta),
        slot @ None => {
            *slot = Some(delta);
            Ok(())
        }
    }
}

/// Runs the reverse sweep starting from `output`. The caller (in [`Graph::backward`]) has
/// already seeded `grads[output]` with ones and cleared the rest.
pub(crate) fn run(graph: &mut Graph, output: VarId) -> Result<()> {
    for idx in (0..=output.0).rev() {
        let upstream = match graph.grads[idx].clone() {
            Some(g) => g,
            None => continue,
        };
        let node_op = graph.nodes[idx].op.clone();
        let inputs = graph.nodes[idx].inputs.clone();
        // Skip propagating into subtrees that contain no differentiable leaves.
        let propagate: Vec<bool> = inputs
            .iter()
            .map(|i| graph.nodes[i.0].requires_grad)
            .collect();
        match node_op {
            Op::Leaf => {}
            Op::MatMul => {
                // Both VJPs run on the tape's pool; the row-sharded kernels are
                // bit-identical to the serial ones, so pooled backward sweeps produce
                // the exact gradient bits of serial ones.
                let pool = graph.pool;
                let a = inputs[0];
                let b = inputs[1];
                if propagate[0] {
                    let grad_a = upstream.matmul_transpose_par(&graph.nodes[b.0].value, pool)?;
                    accumulate(graph, a, grad_a)?;
                }
                if propagate[1] {
                    let grad_b = graph.nodes[a.0]
                        .value
                        .transpose()
                        .matmul_par(&upstream, pool)?;
                    accumulate(graph, b, grad_b)?;
                }
            }
            Op::Add => {
                if propagate[0] {
                    accumulate(graph, inputs[0], upstream.clone())?;
                }
                if propagate[1] {
                    accumulate(graph, inputs[1], upstream)?;
                }
            }
            Op::AddRowBroadcast => {
                if propagate[0] {
                    accumulate(graph, inputs[0], upstream.clone())?;
                }
                if propagate[1] {
                    // The bias row receives the column sums of the upstream gradient.
                    accumulate(graph, inputs[1], upstream.col_sums())?;
                }
            }
            Op::Sub => {
                if propagate[0] {
                    accumulate(graph, inputs[0], upstream.clone())?;
                }
                if propagate[1] {
                    accumulate(graph, inputs[1], upstream.scale(-1.0))?;
                }
            }
            Op::Hadamard => {
                let a = inputs[0];
                let b = inputs[1];
                if propagate[0] {
                    let grad_a = upstream.hadamard(&graph.nodes[b.0].value)?;
                    accumulate(graph, a, grad_a)?;
                }
                if propagate[1] {
                    let grad_b = upstream.hadamard(&graph.nodes[a.0].value)?;
                    accumulate(graph, b, grad_b)?;
                }
            }
            Op::Scale(alpha) => {
                if propagate[0] {
                    accumulate(graph, inputs[0], upstream.scale(alpha))?;
                }
            }
            Op::Shift(_) => {
                if propagate[0] {
                    accumulate(graph, inputs[0], upstream)?;
                }
            }
            Op::Relu => {
                if propagate[0] {
                    let input_value = &graph.nodes[inputs[0].0].value;
                    let gate = input_value.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    accumulate(graph, inputs[0], upstream.hadamard(&gate)?)?;
                }
            }
            Op::SoftmaxRows => {
                if propagate[0] {
                    // For each row: dx = s ∘ (dy - <dy, s>).
                    let s = &graph.nodes[idx].value;
                    let mut grad = Matrix::zeros(s.rows(), s.cols());
                    for r in 0..s.rows() {
                        let s_row = s.row(r);
                        let dy_row = upstream.row(r);
                        let inner: f32 = s_row
                            .iter()
                            .zip(dy_row.iter())
                            .map(|(&si, &di)| si * di)
                            .sum();
                        let out_row = grad.row_mut(r);
                        for ((o, &si), &di) in out_row.iter_mut().zip(s_row).zip(dy_row) {
                            *o = si * (di - inner);
                        }
                    }
                    accumulate(graph, inputs[0], grad)?;
                }
            }
            Op::Transpose => {
                if propagate[0] {
                    accumulate(graph, inputs[0], upstream.transpose())?;
                }
            }
            Op::ConcatCols => {
                let a_cols = graph.nodes[inputs[0].0].value.cols();
                if propagate[0] {
                    accumulate(graph, inputs[0], upstream.slice_cols(0, a_cols)?)?;
                }
                if propagate[1] {
                    accumulate(
                        graph,
                        inputs[1],
                        upstream.slice_cols(a_cols, upstream.cols())?,
                    )?;
                }
            }
            Op::SliceCols { start, end } => {
                if propagate[0] {
                    let src_shape = graph.nodes[inputs[0].0].value.shape();
                    let mut grad = Matrix::zeros(src_shape.0, src_shape.1);
                    for r in 0..upstream.rows() {
                        for (offset, c) in (start..end).enumerate() {
                            grad.set(r, c, upstream.get(r, offset));
                        }
                    }
                    accumulate(graph, inputs[0], grad)?;
                }
            }
            Op::SliceRows { start, end: _ } => {
                if propagate[0] {
                    // Scatter: the sliced rows get the upstream gradient, everything else
                    // zero. Packed training slices one buffer many times (per segment,
                    // per head), all accumulating into the same slot — so once the slot
                    // exists, add the row block in place instead of materialising and
                    // adding a full-size mostly-zero matrix per slice node.
                    let input = inputs[0];
                    let src_shape = graph.nodes[input.0].value.shape();
                    match &mut graph.grads[input.0] {
                        Some(existing) => {
                            for r in 0..upstream.rows() {
                                let dst = existing.row_mut(start + r);
                                for (d, &u) in dst.iter_mut().zip(upstream.row(r)) {
                                    *d += u;
                                }
                            }
                        }
                        slot @ None => {
                            let mut grad = Matrix::zeros(src_shape.0, src_shape.1);
                            grad.paste_rows(start, &upstream)?;
                            *slot = Some(grad);
                        }
                    }
                }
            }
            Op::Vstack { parts } => {
                // Gather: each stacked operand receives its own row block of the upstream
                // gradient.
                let mut offset = 0;
                for (i, &rows) in parts.iter().enumerate() {
                    if propagate[i] {
                        let grad = upstream.slice_rows(offset, offset + rows)?;
                        accumulate(graph, inputs[i], grad)?;
                    }
                    offset += rows;
                }
            }
            Op::Sum => {
                if propagate[0] {
                    let shape = graph.nodes[inputs[0].0].value.shape();
                    let seed = upstream.get(0, 0);
                    accumulate(graph, inputs[0], Matrix::filled(shape.0, shape.1, seed))?;
                }
            }
            Op::Mean => {
                if propagate[0] {
                    let shape = graph.nodes[inputs[0].0].value.shape();
                    let n = (shape.0 * shape.1).max(1) as f32;
                    let seed = upstream.get(0, 0) / n;
                    accumulate(graph, inputs[0], Matrix::filled(shape.0, shape.1, seed))?;
                }
            }
            Op::SquaredSum => {
                if propagate[0] {
                    let seed = upstream.get(0, 0);
                    let grad = graph.nodes[inputs[0].0].value.scale(2.0 * seed);
                    accumulate(graph, inputs[0], grad)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::graph::Graph;
    use crowd_tensor::Matrix;

    fn mat(rows: usize, cols: usize, data: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, data.to_vec()).unwrap()
    }

    #[test]
    fn matmul_gradients() {
        // loss = sum(A @ B); dA = ones @ B^T, dB = A^T @ ones.
        let mut g = Graph::new();
        let a = g.leaf(mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let b = g.leaf(mat(3, 2, &[1.0, -1.0, 0.5, 2.0, -2.0, 1.0]));
        let c = g.matmul(a, b).unwrap();
        let loss = g.sum(c);
        g.backward(loss).unwrap();
        let da = g.grad(a).unwrap();
        let db = g.grad(b).unwrap();
        // dA[i][j] = sum over output cols of B[j][col] = row sums of B.
        assert!((da.get(0, 0) - 0.0).abs() < 1e-5);
        assert!((da.get(0, 1) - 2.5).abs() < 1e-5);
        assert!((da.get(0, 2) - (-1.0)).abs() < 1e-5);
        // dB[j][k] = column sums of A.
        assert!((db.get(0, 0) - 5.0).abs() < 1e-5);
        assert!((db.get(1, 0) - 7.0).abs() < 1e-5);
        assert!((db.get(2, 1) - 9.0).abs() < 1e-5);
    }

    #[test]
    fn relu_gates_gradient() {
        let mut g = Graph::new();
        let x = g.leaf(mat(1, 4, &[-1.0, 2.0, -3.0, 4.0]));
        let y = g.relu(x);
        let loss = g.sum(y);
        g.backward(loss).unwrap();
        assert_eq!(g.grad(x).unwrap().as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn sub_and_scale_gradients() {
        let mut g = Graph::new();
        let x = g.leaf(mat(1, 2, &[3.0, 5.0]));
        let y = g.leaf(mat(1, 2, &[1.0, 1.0]));
        let d = g.sub(x, y).unwrap();
        let s = g.scale(d, 3.0);
        let loss = g.sum(s);
        g.backward(loss).unwrap();
        assert_eq!(g.grad(x).unwrap().as_slice(), &[3.0, 3.0]);
        assert_eq!(g.grad(y).unwrap().as_slice(), &[-3.0, -3.0]);
    }

    #[test]
    fn bias_broadcast_gradient_is_column_sum() {
        let mut g = Graph::new();
        let x = g.constant(Matrix::zeros(3, 2));
        let b = g.leaf(mat(1, 2, &[0.0, 0.0]));
        let y = g.add_row_broadcast(x, b).unwrap();
        let loss = g.sum(y);
        g.backward(loss).unwrap();
        assert_eq!(g.grad(b).unwrap().as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn softmax_gradient_sums_to_zero_per_row() {
        // Because softmax outputs sum to 1, the gradient of any loss w.r.t. the logits sums
        // to zero within each row.
        let mut g = Graph::new();
        let x = g.leaf(mat(2, 3, &[0.3, -1.0, 2.0, 1.0, 1.0, 1.0]));
        let s = g.softmax_rows(x);
        let w = g.constant(mat(2, 3, &[1.0, 2.0, 3.0, -1.0, 0.5, 0.0]));
        let weighted = g.hadamard(s, w).unwrap();
        let loss = g.sum(weighted);
        g.backward(loss).unwrap();
        let gx = g.grad(x).unwrap();
        for r in 0..2 {
            let row_sum: f32 = gx.row(r).iter().sum();
            assert!(row_sum.abs() < 1e-5, "row {r} grad sum {row_sum}");
        }
    }

    #[test]
    fn concat_and_slice_gradients_route_correctly() {
        let mut g = Graph::new();
        let a = g.leaf(mat(2, 2, &[1.0; 4]));
        let b = g.leaf(mat(2, 1, &[1.0; 2]));
        let cat = g.concat_cols(a, b).unwrap();
        // Only the last column (from b) contributes to the loss.
        let right = g.slice_cols(cat, 2, 3).unwrap();
        let loss = g.sum(right);
        g.backward(loss).unwrap();
        assert_eq!(g.grad(a).unwrap().as_slice(), &[0.0; 4]);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn transpose_gradient() {
        let mut g = Graph::new();
        let x = g.leaf(mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let t = g.transpose(x);
        let w = g.constant(mat(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 0.0]));
        let masked = g.hadamard(t, w).unwrap();
        let loss = g.sum(masked);
        g.backward(loss).unwrap();
        assert_eq!(
            g.grad(x).unwrap().as_slice(),
            &[1.0, 0.0, 1.0, 0.0, 1.0, 0.0]
        );
    }

    #[test]
    fn mean_and_squared_sum_gradients() {
        let mut g = Graph::new();
        let x = g.leaf(mat(1, 4, &[1.0, 2.0, 3.0, 4.0]));
        let m = g.mean(x);
        g.backward(m).unwrap();
        assert_eq!(g.grad(x).unwrap().as_slice(), &[0.25; 4]);

        let mut g2 = Graph::new();
        let x2 = g2.leaf(mat(1, 3, &[1.0, -2.0, 3.0]));
        let ss = g2.squared_sum(x2);
        g2.backward(ss).unwrap();
        assert_eq!(g2.grad(x2).unwrap().as_slice(), &[2.0, -4.0, 6.0]);
    }

    #[test]
    fn slice_rows_gradient_scatters_back() {
        let mut g = Graph::new();
        let x = g.leaf(mat(4, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]));
        // Only rows 1..3 contribute to the loss.
        let mid = g.slice_rows(x, 1, 3).unwrap();
        let loss = g.sum(mid);
        g.backward(loss).unwrap();
        assert_eq!(
            g.grad(x).unwrap().as_slice(),
            &[0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0]
        );
    }

    #[test]
    fn repeated_slice_rows_accumulate_in_place() {
        // Several slices of one packed buffer (the per-segment, per-head pattern of
        // packed attention) must accumulate into one gradient, including overlaps.
        let mut g = Graph::new();
        let x = g.leaf(mat(3, 2, &[1.0; 6]));
        let a = g.slice_rows(x, 0, 2).unwrap();
        let b = g.slice_rows(x, 1, 3).unwrap();
        let sa = g.sum(a);
        let sb = g.sum(b);
        let both = g.add(sa, sb).unwrap();
        g.backward(both).unwrap();
        // Row 0 only from a, row 1 from both, row 2 only from b.
        assert_eq!(
            g.grad(x).unwrap().as_slice(),
            &[1.0, 1.0, 2.0, 2.0, 1.0, 1.0]
        );
    }

    #[test]
    fn vstack_gradient_routes_row_blocks() {
        let mut g = Graph::new();
        let a = g.leaf(mat(2, 2, &[1.0; 4]));
        let b = g.leaf(mat(1, 2, &[1.0; 2]));
        let c = g.constant(mat(3, 2, &[1.0; 6]));
        let packed = g.vstack(&[a, b, c]).unwrap();
        assert_eq!(g.value(packed).shape(), (6, 2));
        // Weight each packed row differently so the routing is visible.
        let w = g.constant(mat(
            6,
            2,
            &[1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 9.0, 9.0, 9.0, 9.0, 9.0, 9.0],
        ));
        let weighted = g.hadamard(packed, w).unwrap();
        let loss = g.sum(weighted);
        g.backward(loss).unwrap();
        assert_eq!(g.grad(a).unwrap().as_slice(), &[1.0, 1.0, 2.0, 2.0]);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[3.0, 3.0]);
        assert!(g.grad(c).is_none(), "constants receive no gradient");
    }

    #[test]
    fn vstack_then_slice_rows_roundtrip_gradient() {
        // slice_rows(vstack([a, b])) selecting exactly b's block must give b the full
        // upstream gradient and a none of it — the scatter/gather pair inverts cleanly.
        let mut g = Graph::new();
        let a = g.leaf(mat(3, 2, &[0.5; 6]));
        let b = g.leaf(mat(2, 2, &[0.5; 4]));
        let packed = g.vstack(&[a, b]).unwrap();
        let bb = g.slice_rows(packed, 3, 5).unwrap();
        let loss = g.sum(bb);
        g.backward(loss).unwrap();
        assert_eq!(g.grad(a).unwrap().as_slice(), &[0.0; 6]);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[1.0; 4]);
    }

    #[test]
    fn gradient_accumulates_over_shared_subexpressions() {
        // loss = sum(x + x) => dx = 2.
        let mut g = Graph::new();
        let x = g.leaf(mat(1, 2, &[1.0, 1.0]));
        let y = g.add(x, x).unwrap();
        let loss = g.sum(y);
        g.backward(loss).unwrap();
        assert_eq!(g.grad(x).unwrap().as_slice(), &[2.0, 2.0]);
    }
}
