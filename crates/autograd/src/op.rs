//! The operation set recorded on the tape.

/// Identifier of every differentiable operation the graph supports.
///
/// Each variant stores only the static parameters of the op (e.g. the scale factor); operand
/// node ids are stored on the tape node itself so the backward pass can look up operand
/// values when computing vector-Jacobian products.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A leaf node holding an externally supplied value (network input, constant mask, or a
    /// trainable parameter injected by the layer code). Leaves have no inputs.
    Leaf,
    /// Matrix product `A @ B`.
    MatMul,
    /// Element-wise sum `A + B` (same shapes).
    Add,
    /// Adds a `1 x d` row vector to every row of an `n x d` matrix (bias broadcast).
    AddRowBroadcast,
    /// Element-wise difference `A - B`.
    Sub,
    /// Element-wise (Hadamard) product `A ∘ B`.
    Hadamard,
    /// Multiplication by a compile-time scalar.
    Scale(f32),
    /// Addition of a compile-time scalar to every element.
    Shift(f32),
    /// Rectified linear unit.
    Relu,
    /// Row-wise softmax (numerically stabilised).
    SoftmaxRows,
    /// Matrix transpose.
    Transpose,
    /// Horizontal concatenation `[A | B]`.
    ConcatCols,
    /// Column slice `A[:, start..end]`.
    SliceCols {
        /// First column (inclusive).
        start: usize,
        /// Last column (exclusive).
        end: usize,
    },
    /// Row slice `A[start..end, :]` — the *gather* half of the packed-segment pair: it cuts
    /// one segment's rows out of a packed buffer, and its backward scatters the upstream
    /// gradient back into a zero matrix of the source shape.
    SliceRows {
        /// First row (inclusive).
        start: usize,
        /// Last row (exclusive).
        end: usize,
    },
    /// Vertical stack `[A0; A1; …]` of same-width operands — the *scatter* half of the
    /// packed-segment pair: per-segment results re-enter the packed buffer through it, and
    /// its backward gathers each operand's rows back out of the upstream gradient.
    Vstack {
        /// Row count of every stacked operand, in operand order (recorded so the backward
        /// pass can split the upstream gradient without re-reading operand shapes).
        parts: Vec<usize>,
    },
    /// Sum of all elements, producing a `1 x 1` matrix.
    Sum,
    /// Mean of all elements, producing a `1 x 1` matrix.
    Mean,
    /// Sum of squared elements, producing a `1 x 1` matrix. `squared_sum(x) = Σ x²`.
    SquaredSum,
}

impl Op {
    /// Human-readable name, used in error messages and debugging dumps.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Leaf => "leaf",
            Op::MatMul => "matmul",
            Op::Add => "add",
            Op::AddRowBroadcast => "add_row_broadcast",
            Op::Sub => "sub",
            Op::Hadamard => "hadamard",
            Op::Scale(_) => "scale",
            Op::Shift(_) => "shift",
            Op::Relu => "relu",
            Op::SoftmaxRows => "softmax_rows",
            Op::Transpose => "transpose",
            Op::ConcatCols => "concat_cols",
            Op::SliceCols { .. } => "slice_cols",
            Op::SliceRows { .. } => "slice_rows",
            Op::Vstack { .. } => "vstack",
            Op::Sum => "sum",
            Op::Mean => "mean",
            Op::SquaredSum => "squared_sum",
        }
    }

    /// Number of operand nodes this op expects.
    pub fn arity(&self) -> usize {
        match self {
            Op::Leaf => 0,
            Op::MatMul
            | Op::Add
            | Op::AddRowBroadcast
            | Op::Sub
            | Op::Hadamard
            | Op::ConcatCols => 2,
            Op::Vstack { parts } => parts.len(),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinctive() {
        assert_eq!(Op::MatMul.name(), "matmul");
        assert_eq!(Op::SliceCols { start: 0, end: 1 }.name(), "slice_cols");
        assert_eq!(Op::Scale(2.0).name(), "scale");
    }

    #[test]
    fn arity_matches_semantics() {
        assert_eq!(Op::Leaf.arity(), 0);
        assert_eq!(Op::MatMul.arity(), 2);
        assert_eq!(Op::Relu.arity(), 1);
        assert_eq!(Op::ConcatCols.arity(), 2);
        assert_eq!(Op::SquaredSum.arity(), 1);
        assert_eq!(Op::SliceRows { start: 0, end: 2 }.arity(), 1);
        assert_eq!(
            Op::Vstack {
                parts: vec![2, 3, 1]
            }
            .arity(),
            3
        );
    }
}
