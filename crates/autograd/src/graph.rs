//! The tape ([`Graph`]) and its forward (eager) op-insertion API.

use crate::op::Op;
use crate::Result;
use crowd_tensor::{Matrix, TensorError, ThreadPool};

/// Handle to a node on a [`Graph`] tape.
///
/// `VarId`s are only meaningful for the graph that produced them; using one with a different
/// graph is a logic error (caught by debug assertions on index bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Raw index on the tape; exposed for debugging / diagnostics only.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) op: Op,
    pub(crate) inputs: Vec<VarId>,
    pub(crate) value: Matrix,
    pub(crate) requires_grad: bool,
}

/// A define-by-run tape: ops are evaluated eagerly on insertion, and
/// [`backward`](Graph::backward) replays the tape in reverse to accumulate gradients.
///
/// Graphs are cheap to create and are intended to be rebuilt per forward pass; trainable
/// parameters live outside the graph (see `crowd-nn::ParamStore`) and are injected as
/// gradient-tracking leaves each time.
#[derive(Debug, Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) grads: Vec<Option<Matrix>>,
    /// Pool used by the matmul forward kernels and the MatMul backward VJPs. The serial
    /// default keeps every existing caller single-threaded; the packed-training path
    /// ([`Graph::with_pool`]) opts large stacked tapes into row-sharded kernels, which
    /// are bit-identical to the serial ones (see `crowd_tensor::Matrix::matmul_par`).
    pub(crate) pool: ThreadPool,
}

impl Graph {
    /// Creates an empty tape with serial (single-threaded) kernels.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates an empty tape whose matmul kernels (forward and backward) may shard rows
    /// across `pool`. Values and gradients are bit-identical to a serial tape at any
    /// thread count; only wall clock changes.
    pub fn with_pool(pool: ThreadPool) -> Self {
        Graph {
            pool,
            ..Graph::default()
        }
    }

    /// The pool the tape's matmul kernels run on.
    pub fn pool(&self) -> ThreadPool {
        self.pool
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no node has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, op: Op, inputs: Vec<VarId>, value: Matrix, requires_grad: bool) -> VarId {
        debug_assert_eq!(
            op.arity(),
            inputs.len(),
            "op arity mismatch for {}",
            op.name()
        );
        let id = VarId(self.nodes.len());
        self.nodes.push(Node {
            op,
            inputs,
            value,
            requires_grad,
        });
        self.grads.push(None);
        id
    }

    fn value_of(&self, id: VarId) -> &Matrix {
        &self.nodes[id.0].value
    }

    fn needs_grad(&self, ids: &[VarId]) -> bool {
        ids.iter().any(|id| self.nodes[id.0].requires_grad)
    }

    /// Inserts a differentiable leaf (an input with respect to which gradients will be
    /// computed — typically a trainable parameter).
    pub fn leaf(&mut self, value: Matrix) -> VarId {
        self.push(Op::Leaf, vec![], value, true)
    }

    /// Inserts a constant leaf (no gradient will be accumulated for it — network inputs,
    /// masks, targets).
    pub fn constant(&mut self, value: Matrix) -> VarId {
        self.push(Op::Leaf, vec![], value, false)
    }

    /// Matrix product. Runs on the tape's [`ThreadPool`] (serial by default); the pooled
    /// kernel is bit-identical to the serial one.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> Result<VarId> {
        let value = self.value_of(a).matmul_par(self.value_of(b), self.pool)?;
        let rg = self.needs_grad(&[a, b]);
        Ok(self.push(Op::MatMul, vec![a, b], value, rg))
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> Result<VarId> {
        let value = self.value_of(a).add(self.value_of(b))?;
        let rg = self.needs_grad(&[a, b]);
        Ok(self.push(Op::Add, vec![a, b], value, rg))
    }

    /// Broadcast-adds a `1 x d` bias row to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: VarId, bias: VarId) -> Result<VarId> {
        let value = self.value_of(a).add_row_broadcast(self.value_of(bias))?;
        let rg = self.needs_grad(&[a, bias]);
        Ok(self.push(Op::AddRowBroadcast, vec![a, bias], value, rg))
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: VarId, b: VarId) -> Result<VarId> {
        let value = self.value_of(a).sub(self.value_of(b))?;
        let rg = self.needs_grad(&[a, b]);
        Ok(self.push(Op::Sub, vec![a, b], value, rg))
    }

    /// Element-wise product.
    pub fn hadamard(&mut self, a: VarId, b: VarId) -> Result<VarId> {
        let value = self.value_of(a).hadamard(self.value_of(b))?;
        let rg = self.needs_grad(&[a, b]);
        Ok(self.push(Op::Hadamard, vec![a, b], value, rg))
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, a: VarId, alpha: f32) -> VarId {
        let value = self.value_of(a).scale(alpha);
        let rg = self.needs_grad(&[a]);
        self.push(Op::Scale(alpha), vec![a], value, rg)
    }

    /// Adds `delta` to every element.
    pub fn shift(&mut self, a: VarId, delta: f32) -> VarId {
        let value = self.value_of(a).shift(delta);
        let rg = self.needs_grad(&[a]);
        self.push(Op::Shift(delta), vec![a], value, rg)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let value = self.value_of(a).relu();
        let rg = self.needs_grad(&[a]);
        self.push(Op::Relu, vec![a], value, rg)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: VarId) -> VarId {
        let value = self.value_of(a).softmax_rows();
        let rg = self.needs_grad(&[a]);
        self.push(Op::SoftmaxRows, vec![a], value, rg)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: VarId) -> VarId {
        let value = self.value_of(a).transpose();
        let rg = self.needs_grad(&[a]);
        self.push(Op::Transpose, vec![a], value, rg)
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: VarId, b: VarId) -> Result<VarId> {
        let value = self.value_of(a).concat_cols(self.value_of(b))?;
        let rg = self.needs_grad(&[a, b]);
        Ok(self.push(Op::ConcatCols, vec![a, b], value, rg))
    }

    /// Column slice `a[:, start..end]`.
    pub fn slice_cols(&mut self, a: VarId, start: usize, end: usize) -> Result<VarId> {
        let value = self.value_of(a).slice_cols(start, end)?;
        let rg = self.needs_grad(&[a]);
        Ok(self.push(Op::SliceCols { start, end }, vec![a], value, rg))
    }

    /// Row slice `a[start..end, :]` — gathers one segment's rows out of a packed buffer.
    /// The backward pass scatters the upstream gradient back into the matching rows of a
    /// zero matrix shaped like `a`.
    pub fn slice_rows(&mut self, a: VarId, start: usize, end: usize) -> Result<VarId> {
        let value = self.value_of(a).slice_rows(start, end)?;
        let rg = self.needs_grad(&[a]);
        Ok(self.push(Op::SliceRows { start, end }, vec![a], value, rg))
    }

    /// Vertical stack `[a0; a1; …]` of same-width nodes — scatters per-segment results back
    /// into one packed buffer. The backward pass routes each operand its own row block of
    /// the upstream gradient.
    pub fn vstack(&mut self, parts: &[VarId]) -> Result<VarId> {
        let values: Vec<&Matrix> = parts.iter().map(|&p| self.value_of(p)).collect();
        let value = Matrix::vstack(&values)?;
        let rows: Vec<usize> = values.iter().map(|m| m.rows()).collect();
        let rg = self.needs_grad(parts);
        Ok(self.push(Op::Vstack { parts: rows }, parts.to_vec(), value, rg))
    }

    /// Sum of all elements (`1 x 1` result).
    pub fn sum(&mut self, a: VarId) -> VarId {
        let value = Matrix::filled(1, 1, self.value_of(a).sum());
        let rg = self.needs_grad(&[a]);
        self.push(Op::Sum, vec![a], value, rg)
    }

    /// Mean of all elements (`1 x 1` result).
    pub fn mean(&mut self, a: VarId) -> VarId {
        let value = Matrix::filled(1, 1, self.value_of(a).mean());
        let rg = self.needs_grad(&[a]);
        self.push(Op::Mean, vec![a], value, rg)
    }

    /// Sum of squared elements (`1 x 1` result).
    pub fn squared_sum(&mut self, a: VarId) -> VarId {
        let value = Matrix::filled(1, 1, self.value_of(a).squared_norm());
        let rg = self.needs_grad(&[a]);
        self.push(Op::SquaredSum, vec![a], value, rg)
    }

    /// Convenience: masked mean-squared error `sum(((pred - target) ∘ mask)^2) / max(1, Σ mask)`.
    ///
    /// `target` and `mask` are inserted as constants, so gradients flow only into `pred`.
    /// This is exactly the per-batch DQN loss of Eq. 1/3/6 where `mask` selects the entries
    /// corresponding to the taken actions.
    pub fn masked_mse(&mut self, pred: VarId, target: &Matrix, mask: &Matrix) -> Result<VarId> {
        let denom = mask.sum().max(1.0);
        let t = self.constant(target.clone());
        let m = self.constant(mask.clone());
        let diff = self.sub(pred, t)?;
        let masked = self.hadamard(diff, m)?;
        let sq = self.squared_sum(masked);
        Ok(self.scale(sq, 1.0 / denom))
    }

    /// The packed-minibatch DQN loss: importance-weighted masked mean-squared error
    /// `Σ_r w_r · (mask_r ∘ (pred_r − target_r))² / denom`, evaluated in one graph over a
    /// packed prediction column whose segments each carry one selected (masked-in) row.
    ///
    /// `target`, `mask` and `weights` are inserted as constants, so gradients flow only
    /// into `pred`; `weights` applies each transition's importance-sampling weight
    /// *in-graph*, and `denom` (the minibatch size) turns the weighted sum into the batch
    /// mean. The per-row evaluation order — square the masked difference, then multiply by
    /// the weight, then accumulate row by row — is chosen to reproduce bit for bit the
    /// value the sequential reference loop computes as
    /// `Σ_i masked_mse(pred_i, …) · w_i / B` (see `crowd-rl-core`'s learner): masked-out
    /// rows contribute exact `0.0` terms, and `f32` addition of `0.0` onto a non-negative
    /// accumulator is bit-exact.
    pub fn weighted_masked_mse(
        &mut self,
        pred: VarId,
        target: &Matrix,
        mask: &Matrix,
        weights: &Matrix,
        denom: f32,
    ) -> Result<VarId> {
        let t = self.constant(target.clone());
        let m = self.constant(mask.clone());
        let w = self.constant(weights.clone());
        let diff = self.sub(pred, t)?;
        let masked = self.hadamard(diff, m)?;
        let sq = self.hadamard(masked, masked)?;
        let weighted = self.hadamard(sq, w)?;
        let total = self.sum(weighted);
        Ok(self.scale(total, 1.0 / denom.max(1.0)))
    }

    /// Value of a node.
    pub fn value(&self, id: VarId) -> &Matrix {
        self.value_of(id)
    }

    /// Gradient accumulated for a node by the last [`backward`](Graph::backward) call, if any.
    pub fn grad(&self, id: VarId) -> Option<&Matrix> {
        self.grads[id.0].as_ref()
    }

    /// Whether a node participates in gradient computation.
    pub fn requires_grad(&self, id: VarId) -> bool {
        self.nodes[id.0].requires_grad
    }

    /// Clears all accumulated gradients (the tape itself is retained).
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            *g = None;
        }
    }

    /// Runs the backward pass from `output`, which must be a `1 x 1` scalar node, seeding its
    /// gradient with 1.0 and accumulating gradients for every differentiable ancestor.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `output` is not scalar.
    pub fn backward(&mut self, output: VarId) -> Result<()> {
        let shape = self.value_of(output).shape();
        if shape != (1, 1) {
            return Err(TensorError::ShapeMismatch {
                op: "backward (output must be 1x1 scalar)",
                lhs: shape,
                rhs: (1, 1),
            });
        }
        self.zero_grads();
        self.grads[output.0] = Some(Matrix::ones(1, 1));
        crate::backward::run(self, output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, data: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, data.to_vec()).unwrap()
    }

    #[test]
    fn eager_forward_values() {
        let mut g = Graph::new();
        let a = g.constant(mat(1, 2, &[1.0, 2.0]));
        let b = g.constant(mat(2, 1, &[3.0, 4.0]));
        let c = g.matmul(a, b).unwrap();
        assert_eq!(g.value(c).get(0, 0), 11.0);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn requires_grad_propagates() {
        let mut g = Graph::new();
        let c = g.constant(Matrix::ones(2, 2));
        let p = g.leaf(Matrix::ones(2, 2));
        let s1 = g.add(c, c).unwrap();
        let s2 = g.add(c, p).unwrap();
        assert!(!g.requires_grad(s1));
        assert!(g.requires_grad(s2));
    }

    #[test]
    fn backward_requires_scalar_output() {
        let mut g = Graph::new();
        let p = g.leaf(Matrix::ones(2, 2));
        let r = g.relu(p);
        assert!(g.backward(r).is_err());
        let s = g.sum(r);
        assert!(g.backward(s).is_ok());
    }

    #[test]
    fn constants_get_no_gradient() {
        let mut g = Graph::new();
        let c = g.constant(Matrix::ones(1, 2));
        let p = g.leaf(Matrix::ones(2, 1));
        let y = g.matmul(c, p).unwrap();
        let loss = g.squared_sum(y);
        g.backward(loss).unwrap();
        assert!(g.grad(c).is_none());
        assert!(g.grad(p).is_some());
    }

    #[test]
    fn masked_mse_matches_manual_computation() {
        let mut g = Graph::new();
        let pred = g.leaf(mat(1, 3, &[1.0, 2.0, 3.0]));
        let target = mat(1, 3, &[0.0, 5.0, 0.0]);
        let mask = mat(1, 3, &[0.0, 1.0, 0.0]);
        let loss = g.masked_mse(pred, &target, &mask).unwrap();
        // Only the middle entry counts: (2 - 5)^2 / 1 = 9.
        assert!((g.value(loss).get(0, 0) - 9.0).abs() < 1e-5);
        g.backward(loss).unwrap();
        let gp = g.grad(pred).unwrap();
        // d/dpred_1 = 2 * (2 - 5) = -6; masked-out entries get zero gradient.
        assert!((gp.get(0, 1) + 6.0).abs() < 1e-4);
        assert_eq!(gp.get(0, 0), 0.0);
        assert_eq!(gp.get(0, 2), 0.0);
    }

    #[test]
    fn weighted_masked_mse_matches_sequential_accumulation() {
        // Two "transitions" packed into one column: rows 1 and 3 are the selected action
        // rows with weights 0.5 and 1.0; denom 2 is the batch mean.
        let mut g = Graph::new();
        let pred = g.leaf(mat(4, 1, &[9.0, 2.0, 9.0, 4.0]));
        let target = mat(4, 1, &[0.0, 5.0, 0.0, 1.0]);
        let mask = mat(4, 1, &[0.0, 1.0, 0.0, 1.0]);
        let weights = mat(4, 1, &[0.0, 0.5, 0.0, 1.0]);
        let loss = g
            .weighted_masked_mse(pred, &target, &mask, &weights, 2.0)
            .unwrap();
        // ((2-5)^2 * 0.5 + (4-1)^2 * 1.0) / 2 = (4.5 + 9) / 2 = 6.75.
        assert!((g.value(loss).get(0, 0) - 6.75).abs() < 1e-5);
        g.backward(loss).unwrap();
        let gp = g.grad(pred).unwrap();
        // d/dpred_1 = 2 * (2 - 5) * 0.5 / 2 = -1.5; masked-out rows get zero gradient.
        assert!((gp.get(1, 0) + 1.5).abs() < 1e-4);
        assert!((gp.get(3, 0) - 3.0).abs() < 1e-4);
        assert_eq!(gp.get(0, 0), 0.0);
        assert_eq!(gp.get(2, 0), 0.0);
    }

    #[test]
    fn pooled_tape_matches_serial_tape_bit_for_bit() {
        // Forward values and backward gradients of a large matmul chain must be the exact
        // bits of the serial tape at any thread count (the row-sharded kernels' contract).
        use crowd_tensor::Rng;
        let mut rng = Rng::seed_from(7);
        let x = Matrix::randn(256, 48, &mut rng);
        let w1 = Matrix::randn(48, 64, &mut rng);
        let w2 = Matrix::randn(64, 32, &mut rng);
        let run = |pool: ThreadPool| {
            let mut g = Graph::with_pool(pool);
            let xv = g.constant(x.clone());
            let w1v = g.leaf(w1.clone());
            let w2v = g.leaf(w2.clone());
            let h = g.matmul(xv, w1v).unwrap();
            let y = g.matmul(h, w2v).unwrap();
            let loss = g.squared_sum(y);
            g.backward(loss).unwrap();
            (
                g.value(y).clone(),
                g.grad(w1v).unwrap().clone(),
                g.grad(w2v).unwrap().clone(),
            )
        };
        let serial = run(ThreadPool::serial());
        for threads in [2usize, 8] {
            let pooled = run(ThreadPool::new(threads));
            assert_eq!(pooled.0, serial.0, "forward diverged at {threads} threads");
            assert_eq!(pooled.1, serial.1, "grad(w1) diverged at {threads} threads");
            assert_eq!(pooled.2, serial.2, "grad(w2) diverged at {threads} threads");
        }
        assert_eq!(Graph::new().pool(), ThreadPool::serial());
        assert_eq!(Graph::with_pool(ThreadPool::new(4)).pool().threads(), 4);
    }

    #[test]
    fn zero_grads_resets() {
        let mut g = Graph::new();
        let p = g.leaf(Matrix::ones(1, 1));
        let loss = g.squared_sum(p);
        g.backward(loss).unwrap();
        assert!(g.grad(p).is_some());
        g.zero_grads();
        assert!(g.grad(p).is_none());
    }
}
