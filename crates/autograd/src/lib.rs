//! Tape-based reverse-mode automatic differentiation over [`crowd_tensor::Matrix`].
//!
//! The paper's Q-network (Fig. 3/4) is a stack of row-wise feed-forward layers and multi-head
//! self-attention layers followed by a masked squared-error loss (Eq. 1/3/6). This crate
//! provides exactly the operation set needed to express that network and differentiate it:
//! matrix multiplication, transposition, broadcast bias addition, element-wise arithmetic,
//! ReLU, row-wise softmax, column concatenation/slicing, reductions, and a masked
//! sum-of-squared-errors loss.
//!
//! # Model
//!
//! A [`Graph`] is a flat tape of nodes. Values are computed eagerly as ops are inserted
//! (define-by-run), so the forward pass is just "build the graph". Calling
//! [`Graph::backward`] on a scalar node walks the tape in reverse and accumulates gradients
//! for every node that (transitively) depends on a differentiable leaf.
//!
//! ```
//! use crowd_autograd::Graph;
//! use crowd_tensor::Matrix;
//!
//! let mut g = Graph::new();
//! let x = g.leaf(Matrix::from_vec(1, 2, vec![3.0, -1.0]).unwrap());
//! let w = g.leaf(Matrix::from_vec(2, 1, vec![2.0, 0.5]).unwrap());
//! let y = g.matmul(x, w).unwrap();      // y = x @ w = 5.5
//! let loss = g.squared_sum(y);          // loss = y^2
//! g.backward(loss).unwrap();
//! // d loss / d w = 2 * y * x
//! let gw = g.grad(w).unwrap();
//! assert!((gw.get(0, 0) - 2.0 * 5.5 * 3.0).abs() < 1e-3);
//! ```
//!
//! # Tape vs tape-free inference
//!
//! Every layer in `crowd-nn` has two forward paths: a taped `forward` (differentiable, used
//! by the learner) and a tape-free `infer` (used at decision time, including the batched
//! path). The convention is that both compute the same function; the graph is only needed
//! when gradients are:
//!
//! ```
//! use crowd_autograd::Graph;
//! use crowd_tensor::{Matrix, Rng};
//!
//! let mut rng = Rng::seed_from(5);
//! let x = Matrix::randn(4, 3, &mut rng);
//! let w = Matrix::randn(3, 2, &mut rng);
//!
//! // Tape-free: plain matrix ops.
//! let direct = x.matmul(&w).unwrap().relu();
//!
//! // Taped: same values, plus the ability to backpropagate.
//! let mut g = Graph::new();
//! let xv = g.constant(x);
//! let wv = g.leaf(w);
//! let y = g.matmul(xv, wv).unwrap();
//! let y = g.relu(y);
//! assert_eq!(g.value(y).as_slice(), direct.as_slice());
//!
//! let loss = g.squared_sum(y);
//! g.backward(loss).unwrap();
//! assert!(g.grad(wv).unwrap().norm() > 0.0); // gradients only exist on the tape
//! ```
//!
//! Gradients are verified against central finite differences in [`gradcheck`]; the
//! equivalence of taped and tape-free forwards is asserted per layer in `crowd-nn` and for
//! the whole Q-network in `crowd-rl-core`.

pub mod backward;
pub mod gradcheck;
pub mod graph;
pub mod op;

pub use graph::{Graph, VarId};
pub use op::Op;

/// Result alias re-exported from the tensor crate: autograd errors are all shape errors
/// surfaced by the underlying matrix operations.
pub type Result<T> = crowd_tensor::Result<T>;
